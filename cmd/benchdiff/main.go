// Command benchdiff compares two BENCH_sweep.json records (see
// exp.SweepBench) and reports per-metric deltas against a tolerance
// band, so `make benchdiff` can flag a perf regression between the
// committed record and a freshly measured one.
//
// Throughput metrics (events/sec, speedup) regress when the new value
// falls more than the tolerance below the old; wall times regress when
// they grow more than the tolerance above the old. The audit and metrics
// overhead ratios are additionally held to an absolute budget
// (overheadBudget below), and the armed cancellation check to its own
// tighter one (cancelBudget).
// Exit status is 1 on any regression — CI runs this non-blocking, so the
// status is informational there but hard locally.
//
// Usage:
//
//	benchdiff [-tol 0.25] old.json new.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"memnet/internal/exp"
)

// overheadBudget is the absolute ceiling for the observational
// subsystems' slowdown. The original budget was 5% against the 4-ary
// heap kernel's 4.1M ev/s; the timing-wheel kernel runs the same sweep
// 2.4× faster, so the audit and metrics hooks' unchanged absolute cost
// is a proportionally larger fraction of the run (measured 2–5%). The
// ceiling is normalized accordingly — it still catches a real
// regression (a mis-armed full-rate sampler lands far beyond it) while
// not penalizing kernel speedups for shrinking the denominator.
const overheadBudget = 0.08

// cancelBudget is the absolute ceiling for the armed cancellation
// check's slowdown. Unlike the audit/metrics hooks, the check is a
// single masked-counter branch per event plus a context poll every
// 2^14 events, so its true cost is far below measurement noise; the
// 1% ceiling is the contract that keeps it that way — every memnetd
// job and every interruptible CLI batch runs with the check armed, so
// a regression here taxes all of them.
const cancelBudget = 0.01

func load(path string) exp.SweepBench {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	var b exp.SweepBench
	if err := json.Unmarshal(data, &b); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: parsing %s: %v\n", path, err)
		os.Exit(2)
	}
	return b
}

func main() {
	tol := flag.Float64("tol", 0.25,
		"fractional tolerance band; wall/throughput deltas beyond it count as regressions")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-tol 0.25] old.json new.json")
		os.Exit(2)
	}
	oldB, newB := load(flag.Arg(0)), load(flag.Arg(1))

	if oldB.Cells != newB.Cells || oldB.Events != newB.Events {
		fmt.Printf("note: sweeps differ (%d cells / %d events vs %d / %d); comparing rates anyway\n",
			oldB.Cells, oldB.Events, newB.Cells, newB.Events)
	}

	// higherBetter metrics regress downward, the rest upward.
	rows := []struct {
		name         string
		old, new     float64
		higherBetter bool
		checked      bool // uninformative wall times still print but never fail
	}{
		{"events/sec seq", oldB.EventsPerSec.Seq, newB.EventsPerSec.Seq, true, true},
		{"events/sec par", oldB.EventsPerSec.Par, newB.EventsPerSec.Par, true, true},
		{"speedup", oldB.Speedup, newB.Speedup, true, true},
		{"wall seq (s)", oldB.WallSeqSec, newB.WallSeqSec, false, false},
		{"wall par (s)", oldB.WallParSec, newB.WallParSec, false, false},
		{"audit overhead", oldB.AuditOverhead, newB.AuditOverhead, false, false},
		{"metrics overhead", oldB.MetricsOverhead, newB.MetricsOverhead, false, false},
		{"cancel overhead", oldB.CancelOverhead, newB.CancelOverhead, false, false},
	}
	regressed := false
	fmt.Printf("%-17s %12s %12s %9s\n", "metric", "old", "new", "delta")
	for _, r := range rows {
		delta := 0.0
		if r.old != 0 {
			delta = r.new/r.old - 1
		}
		verdict := ""
		if r.checked && r.old != 0 {
			if (r.higherBetter && delta < -*tol) || (!r.higherBetter && delta > *tol) {
				verdict = "  REGRESSED"
				regressed = true
			}
		}
		fmt.Printf("%-17s %12.3f %12.3f %+8.1f%%%s\n", r.name, r.old, r.new, 100*delta, verdict)
	}
	for _, c := range []struct {
		name   string
		v      float64
		budget float64
	}{
		{"audit", newB.AuditOverhead, overheadBudget},
		{"metrics", newB.MetricsOverhead, overheadBudget},
		{"cancel", newB.CancelOverhead, cancelBudget},
	} {
		if c.v > c.budget {
			fmt.Printf("%s overhead %.1f%% exceeds the %.0f%% budget\n", c.name, 100*c.v, 100*c.budget)
			regressed = true
		}
	}
	if regressed {
		fmt.Println("RESULT: regression beyond tolerance")
		os.Exit(1)
	}
	fmt.Printf("RESULT: within tolerance (±%.0f%%)\n", 100**tol)
}
