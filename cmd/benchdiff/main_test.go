package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"memnet/internal/exp"
)

func buildCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "benchdiff")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func writeBench(t *testing.T, dir, name string, b exp.SweepBench) string {
	t.Helper()
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func baseBench() exp.SweepBench {
	b := exp.SweepBench{Cells: 32, Jobs: 4, Events: 1000, WallSeqSec: 4, WallParSec: 2,
		WallAuditSec: 4.1, AuditOverhead: 0.025, WallMetricsSec: 4.1, MetricsOverhead: 0.025,
		Speedup: 2}
	b.EventsPerSec.Seq = 250
	b.EventsPerSec.Par = 500
	return b
}

func TestBenchdiffVerdicts(t *testing.T) {
	bin := buildCLI(t)
	dir := t.TempDir()
	old := writeBench(t, dir, "old.json", baseBench())

	cases := []struct {
		name     string
		mutate   func(*exp.SweepBench)
		wantFail bool
		wantOut  string
	}{
		{"identical", func(b *exp.SweepBench) {}, false, "within tolerance"},
		{"small drift", func(b *exp.SweepBench) { b.EventsPerSec.Seq = 230 }, false, "within tolerance"},
		{"throughput collapse", func(b *exp.SweepBench) { b.EventsPerSec.Seq = 100 }, true, "REGRESSED"},
		{"speedup collapse", func(b *exp.SweepBench) { b.Speedup = 1.0 }, true, "REGRESSED"},
		{"metrics budget blown", func(b *exp.SweepBench) { b.MetricsOverhead = 0.11 }, true, "exceeds the 8% budget"},
		{"audit budget blown", func(b *exp.SweepBench) { b.AuditOverhead = 0.09 }, true, "exceeds the 8% budget"},
		{"cancel budget blown", func(b *exp.SweepBench) { b.CancelOverhead = 0.02 }, true, "exceeds the 1% budget"},
		{"wall time is informational", func(b *exp.SweepBench) { b.WallSeqSec = 40 }, false, "within tolerance"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := baseBench()
			tc.mutate(&b)
			newPath := writeBench(t, t.TempDir(), "new.json", b)
			out, err := exec.Command(bin, old, newPath).CombinedOutput()
			if tc.wantFail && err == nil {
				t.Errorf("expected nonzero exit\n%s", out)
			}
			if !tc.wantFail && err != nil {
				t.Errorf("unexpected failure: %v\n%s", err, out)
			}
			if !strings.Contains(string(out), tc.wantOut) {
				t.Errorf("output missing %q:\n%s", tc.wantOut, out)
			}
		})
	}
}

func TestBenchdiffUsageAndBadFiles(t *testing.T) {
	bin := buildCLI(t)
	if out, err := exec.Command(bin).CombinedOutput(); err == nil || !strings.Contains(string(out), "usage:") {
		t.Errorf("no-arg invocation: err=%v out=%s", err, out)
	}
	if out, err := exec.Command(bin, "nope.json", "nope2.json").CombinedOutput(); err == nil {
		t.Errorf("missing files accepted: %s", out)
	}
}
