// Command memnettrace records, inspects, and replays memory access traces.
//
//	memnettrace record -wl mixB -o mixb.trace -simtime 1ms
//	memnettrace info mixb.trace
//	memnettrace replay -topo star -policy aware -alpha 0.05 mixb.trace
//
// Replay drives the same trace through any network/policy configuration,
// so configurations can be compared under byte-identical traffic.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"memnet/internal/core"
	"memnet/internal/link"
	"memnet/internal/network"
	"memnet/internal/sim"
	"memnet/internal/topology"
	"memnet/internal/trace"
	"memnet/internal/workload"
)

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  memnettrace record -wl <workload> -o <file> [-topo t] [-size s] [-simtime d]
  memnettrace info <file>
  memnettrace replay [-topo t] [-size s] [-mech m] [-policy p] [-alpha a] <file>`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	default:
		usage()
	}
}

func simDuration(fs *flag.FlagSet, name, def, help string) func() sim.Duration {
	s := fs.String(name, def, help)
	return func() sim.Duration {
		d, err := time.ParseDuration(*s)
		if err != nil {
			log.Fatalf("bad -%s: %v", name, err)
		}
		return sim.Duration(d.Nanoseconds()) * sim.Nanosecond
	}
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	wlName := fs.String("wl", "mixB", "workload profile")
	out := fs.String("o", "", "output trace file (required)")
	topoName := fs.String("topo", "star", "topology used while recording")
	sizeName := fs.String("size", "small", "small or big")
	simtime := simDuration(fs, "simtime", "400us", "recording window")
	fs.Parse(args)
	if *out == "" {
		log.Fatal("record: -o is required")
	}
	wl, err := workload.ByName(*wlName)
	if err != nil {
		log.Fatal(err)
	}
	k := sim.NewKernel()
	net := makeNet(k, *topoName, *sizeName, "FP", wl.Modules(chunkGBOf(*sizeName)))
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	w := trace.NewWriter(f)
	rec := trace.AttachRecorder(net, w)
	fe, err := workload.NewFrontEnd(k, net, wl, workload.DefaultFrontEndConfig(42))
	if err != nil {
		log.Fatal(err)
	}
	fe.Start()
	k.Run(simtime())
	if rec.Err() != nil {
		log.Fatal(rec.Err())
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d accesses of %s over %s to %s\n", w.Count(), wl.Name, simtime(), *out)
}

func chunkGBOf(size string) int {
	if size == "big" {
		return 1
	}
	return 4
}

func makeNet(k *sim.Kernel, topoName, sizeName, mechName string, modules int) *network.Network {
	kind, err := topology.ParseKind(topoName)
	if err != nil {
		log.Fatal(err)
	}
	topo, err := topology.Build(kind, modules)
	if err != nil {
		log.Fatal(err)
	}
	cfg := network.DefaultConfig()
	cfg.ChunkBytes = uint64(chunkGBOf(sizeName)) << 30
	switch mechName {
	case "FP":
	case "VWL":
		cfg.Mechanism = link.MechVWL
	case "ROO":
		cfg.ROO = true
	case "VWL+ROO":
		cfg.Mechanism, cfg.ROO = link.MechVWL, true
	case "DVFS":
		cfg.Mechanism = link.MechDVFS
	case "DVFS+ROO":
		cfg.Mechanism, cfg.ROO = link.MechDVFS, true
	default:
		log.Fatalf("unknown mechanism %q", mechName)
	}
	return network.New(k, topo, cfg)
}

func info(args []string) {
	if len(args) != 1 {
		usage()
	}
	f, err := os.Open(args[0])
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	s, err := trace.Summarize(f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("records:   %d (%d reads, %d writes)\n", s.Records, s.Reads, s.Writes)
	fmt.Printf("span:      %s (first at %s)\n", s.Span, s.FirstAt)
	fmt.Printf("max addr:  %#x (%.1f GB)\n", s.MaxAddr, float64(s.MaxAddr)/(1<<30))
	if s.Span > 0 {
		rate := float64(s.Records) / s.Span.Seconds()
		fmt.Printf("rate:      %.1f M accesses/s\n", rate/1e6)
	}
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	topoName := fs.String("topo", "star", "topology")
	sizeName := fs.String("size", "small", "small or big")
	mechName := fs.String("mech", "VWL+ROO", "link power mechanism")
	policyName := fs.String("policy", "aware", "none | unaware | aware | static")
	alpha := fs.Float64("alpha", 0.05, "allowable slowdown factor")
	scale := fs.Float64("timescale", 1.0, "stretch (>1) or compress (<1) inter-arrival times")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.NewReader(f)
	if err != nil {
		log.Fatal(err)
	}
	records, err := tr.ReadAll()
	if err != nil {
		log.Fatal(err)
	}
	if len(records) == 0 {
		log.Fatal("replay: empty trace")
	}
	maxAddr := uint64(0)
	for _, r := range records {
		if r.Addr > maxAddr {
			maxAddr = r.Addr
		}
	}
	chunk := uint64(chunkGBOf(*sizeName)) << 30
	modules := int(maxAddr/chunk) + 1

	k := sim.NewKernel()
	net := makeNet(k, *topoName, *sizeName, *mechName, modules)
	var pk core.PolicyKind
	switch *policyName {
	case "none", "fp":
		pk = core.PolicyNone
	case "unaware":
		pk = core.PolicyUnaware
	case "aware":
		pk = core.PolicyAware
	case "static":
		pk = core.PolicyStatic
	default:
		log.Fatalf("unknown policy %q", *policyName)
	}
	core.Attach(k, net, core.DefaultConfig(pk, *alpha))

	player, err := trace.NewPlayer(k, net, records, *scale)
	if err != nil {
		log.Fatal(err)
	}
	start := net.TakeSnapshot()
	player.Start()
	span := sim.Duration(float64(records[len(records)-1].At-records[0].At) * *scale)
	k.Run(k.Now() + span + 10*sim.Microsecond)
	end := net.TakeSnapshot()

	p := network.IntervalPower(start, end)
	fmt.Printf("replayed %d accesses over %s on %s/%s (%d modules), %s links, %s policy\n",
		player.Injected(), span, *sizeName, *topoName, modules, *mechName, *policyName)
	fmt.Printf("  avg power:    %.2f W total, %.3f W/HMC\n", p.Total(), p.Total()/float64(modules))
	fmt.Printf("  idle I/O:     %.1f%% of total\n", 100*p.IdleIO/p.Total())
	fmt.Printf("  read latency: %s (avg)\n", network.AvgReadLatency(start, end))
	fmt.Printf("  throughput:   %.1f M accesses/s\n", network.Throughput(start, end)/1e6)
}
