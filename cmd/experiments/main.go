// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig5
//	experiments -run all -simtime 1ms
//
// Output is a text table per experiment whose rows/series match the
// paper's plots; EXPERIMENTS.md records a full paper-vs-measured pass.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"memnet/internal/audit"
	"memnet/internal/dist"
	"memnet/internal/exp"
	"memnet/internal/fault"
	"memnet/internal/metrics"
	"memnet/internal/sim"
	"memnet/internal/viz"
)

func parseDuration(s string) (sim.Duration, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	return sim.Duration(d.Nanoseconds()) * sim.Nanosecond, nil
}

func main() {
	// Same GC posture as memnetsim: the live heap is a few MB but sweep
	// cells churn construction garbage, and GOGC=100 keeps write
	// barriers armed on the event queue's hottest stores for a large
	// fraction of the run. A higher trigger trades a bounded RSS bump
	// for those cycles back.
	debug.SetGCPercent(600)

	runName := flag.String("run", "", "experiment to run (or 'all')")
	list := flag.Bool("list", false, "list experiments")
	calibrate := flag.Bool("calibrate", false,
		"validate the model against the published reference table and print the accuracy report (exits 1 on drift)")
	simtime := flag.String("simtime", "400us", "measured simulated interval per run")
	warmup := flag.String("warmup", "100us", "simulated warmup per run")
	outDir := flag.String("outdir", "", "also write each experiment's output to <outdir>/<name>.txt")
	verbose := flag.Bool("v", false, "print a line per fresh simulation run")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0),
		"parallel simulation workers per experiment (1 = sequential; output is identical either way)")
	faultsFile := flag.String("faults", "", "JSON fault scenario applied to every cell of the sweep")
	retrainF := flag.String("retrain", "", "link retraining latency for repair/escalation, e.g. 1us (empty = model default)")
	crcRetries := flag.Int("crcretries", 0, "consecutive CRC retries per packet before escalation (0 = model default)")
	auditEvery := flag.Int("audit", audit.DefaultSampleEvery,
		"invariant auditor sampling stride (1 = check every observation, 0 = disable)")
	journalPath := flag.String("journal", "",
		"append completed cells to this JSON-lines file and resume from it on restart")
	metricsOn := flag.Bool("metrics", false,
		"sample epoch-resolution metrics in every cell and print a sweep-aggregate time-series figure")
	metricsIntervalF := flag.String("metrics-interval", "10us", "metrics sampling period (with -metrics)")
	metricsOut := flag.String("metrics-out", "",
		"write per-cell metrics to this file; .csv gets CSV, anything else JSON lines (with -metrics)")
	coordAddr := flag.String("coordinator", "",
		"serve every experiment's sweep to distributed workers on this address (e.g. :9731) instead of running locally")
	workerURL := flag.String("worker", "",
		"run as a sweep worker against this coordinator URL (e.g. http://host:9731); -journal becomes the local salvage journal")
	leaseF := flag.String("lease", "", "coordinator lease TTL granted to workers (default 10s)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile (taken at exit, after a final GC) to this file")
	flag.Parse()

	lease := dist.DefaultLeaseTTL
	if *leaseF != "" {
		d, err := time.ParseDuration(*leaseF)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad -lease: %v\n", err)
			os.Exit(1)
		}
		if d <= 0 {
			fmt.Fprintf(os.Stderr, "bad -lease: must be positive, got %s\n", *leaseF)
			os.Exit(1)
		}
		lease = d
	}
	if *leaseF != "" && *coordAddr == "" {
		fmt.Fprintf(os.Stderr, "bad -lease: requires -coordinator\n")
		os.Exit(1)
	}
	if *calibrate {
		runCalibrate(*jobs, *simtime, *warmup, *outDir)
		return
	}
	if *workerURL != "" {
		if *coordAddr != "" || *runName != "" {
			fmt.Fprintf(os.Stderr, "bad -worker: mutually exclusive with -coordinator and -run\n")
			os.Exit(1)
		}
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "cpuprofile" || f.Name == "memprofile" {
				fmt.Fprintf(os.Stderr, "bad -%s: not supported with -worker (profiles flush only at a clean exit)\n", f.Name)
				os.Exit(1)
			}
		})
		runWorkerMode(*workerURL, *journalPath)
		return
	}
	if *coordAddr != "" && *runName == "" {
		fmt.Fprintf(os.Stderr, "bad -coordinator: requires -run (it serves a sweep)\n")
		os.Exit(1)
	}

	if *list || *runName == "" {
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "cpuprofile" || f.Name == "memprofile" {
				fmt.Fprintf(os.Stderr, "bad -%s: requires -run (nothing to profile)\n", f.Name)
				os.Exit(1)
			}
		})
		fmt.Println("experiments:")
		for _, e := range exp.Registry {
			heavy := ""
			if e.Heavy {
				heavy = " [heavy]"
			}
			fmt.Printf("  %-9s %s%s\n", e.Name, e.Description, heavy)
		}
		return
	}

	stop, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	stopProfiles = stop
	defer stopProfiles()

	ctx, stopSignals := interruptContext()
	defer stopSignals()

	r := exp.NewRunner()
	r.Ctx = ctx
	if r.SimTime, err = parseDuration(*simtime); err != nil {
		fmt.Fprintf(os.Stderr, "bad -simtime: %v\n", err)
		os.Exit(1)
	}
	if r.SimTime <= 0 {
		fmt.Fprintf(os.Stderr, "bad -simtime: must be positive, got %s\n", *simtime)
		os.Exit(1)
	}
	if r.Warmup, err = parseDuration(*warmup); err != nil {
		fmt.Fprintf(os.Stderr, "bad -warmup: %v\n", err)
		os.Exit(1)
	}
	if r.Warmup < 0 {
		fmt.Fprintf(os.Stderr, "bad -warmup: must be non-negative, got %s\n", *warmup)
		os.Exit(1)
	}
	if *jobs < 1 {
		fmt.Fprintf(os.Stderr, "bad -jobs: need at least 1 worker, got %d\n", *jobs)
		os.Exit(1)
	}
	if *auditEvery < 0 {
		fmt.Fprintf(os.Stderr, "bad -audit: stride must be >= 0 (0 disables), got %d\n", *auditEvery)
		os.Exit(1)
	}
	if *crcRetries < 0 {
		fmt.Fprintf(os.Stderr, "bad -crcretries: must be non-negative (0 = model default), got %d\n", *crcRetries)
		os.Exit(1)
	}
	if !*metricsOn {
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "metrics-interval" || f.Name == "metrics-out" {
				fmt.Fprintf(os.Stderr, "bad -%s: requires -metrics\n", f.Name)
				os.Exit(1)
			}
		})
	} else {
		if r.Metrics, err = parseDuration(*metricsIntervalF); err != nil {
			fmt.Fprintf(os.Stderr, "bad -metrics-interval: %v\n", err)
			os.Exit(1)
		}
		if r.Metrics <= 0 {
			fmt.Fprintf(os.Stderr, "bad -metrics-interval: must be positive, got %s\n", *metricsIntervalF)
			os.Exit(1)
		}
	}
	if *retrainF != "" {
		if r.Retrain, err = parseDuration(*retrainF); err != nil {
			fmt.Fprintf(os.Stderr, "bad -retrain: %v\n", err)
			os.Exit(1)
		}
		if r.Retrain <= 0 {
			fmt.Fprintf(os.Stderr, "bad -retrain: must be positive, got %s\n", *retrainF)
			os.Exit(1)
		}
	}
	r.CRCRetries = *crcRetries
	if *verbose {
		r.Progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}
	r.Jobs = *jobs
	if *auditEvery == 0 {
		r.Audit = -1
	} else {
		r.Audit = *auditEvery
	}
	if *faultsFile != "" {
		sc, err := fault.LoadScenario(*faultsFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad -faults: %v\n", err)
			os.Exit(1)
		}
		r.Faults = sc
	}
	var journal *exp.Journal
	var journalLoaded map[string]exp.Result
	if *journalPath != "" {
		j, loaded, err := exp.OpenJournal(*journalPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad -journal: %v\n", err)
			os.Exit(1)
		}
		defer j.Close()
		if len(loaded) > 0 {
			fmt.Fprintf(os.Stderr, "journal: resuming with %d completed cell(s) from %s\n", len(loaded), *journalPath)
		}
		journal, journalLoaded = j, loaded
	}
	// In coordinator mode the coordinator owns the journal (cells are
	// restored and appended at the merge point); locally the runner does.
	var dc *distCoordinator
	if *coordAddr != "" {
		dc = startCoordinator(*coordAddr, lease, journal, journalLoaded)
		defer dc.close()
	} else if journal != nil {
		r.AttachJournal(journal, journalLoaded)
	}
	// generate renders one experiment, fanning its cells across the local
	// pool or, in coordinator mode, the connected workers.
	generate := func(e exp.Experiment) string {
		if dc == nil {
			return r.Generate(e)
		}
		if todo := r.Uncached(r.Collect(e.Run)); len(todo) > 0 {
			results, errs := dc.sweep(todo)
			r.Commit(todo, results, errs)
		}
		return e.Run(r)
	}
	// Cell failures (audit violations, stalls, recovered panics) are
	// reported after rendering: the healthy cells still produce output.
	// An interrupt is reported as a partial run, not a cell failure —
	// completed cells are already journaled and a -journal rerun resumes
	// from them.
	reportFailures := func() {
		fails := r.Failures()
		if err := ctx.Err(); err != nil {
			canceled := 0
			for _, f := range fails {
				if errors.Is(f.Err, context.Canceled) {
					canceled++
				}
			}
			summary := fmt.Sprintf("interrupted: %d cell(s) canceled mid-sweep", canceled)
			if journal != nil {
				journal.Close() // flush before os.Exit skips the defer
				summary += fmt.Sprintf("; completed cells are journaled — rerun with -journal %s to resume",
					*journalPath)
			}
			if dc != nil {
				dc.close()
			}
			exitInterrupted(summary)
		}
		if len(fails) == 0 {
			return
		}
		panicked := 0
		for _, f := range fails {
			var pe *exp.PanicError
			if errors.As(f.Err, &pe) {
				panicked++
			}
		}
		if panicked > 0 {
			fmt.Fprintf(os.Stderr, "\n%d cell(s) failed (%d panicked):\n", len(fails), panicked)
		} else {
			fmt.Fprintf(os.Stderr, "\n%d cell(s) failed:\n", len(fails))
		}
		for _, f := range fails {
			fmt.Fprintf(os.Stderr, "  %s: %v\n", f.Key, f.Err)
		}
		if dc != nil {
			// os.Exit skips defers: dismiss the workers first.
			dc.close()
		}
		stopProfiles()
		os.Exit(1)
	}

	// metricsFigure renders the sweep-aggregate time series for the
	// cells recorded since the last call (one experiment's sweep).
	seen := 0
	metricsFigure := func() string {
		if !*metricsOn {
			return ""
		}
		ents := r.MetricsEntries()[seen:]
		seen += len(ents)
		dumps := make([]*metrics.Dump, len(ents))
		for i, e := range ents {
			dumps[i] = e.Dump
		}
		agg, err := metrics.Merge(dumps...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrics merge: %v\n", err)
			return ""
		}
		return viz.RenderTimeSeries(agg)
	}
	exportMetrics := func() {
		if *metricsOut == "" {
			return
		}
		f, err := os.Create(*metricsOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad -metrics-out: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		ents := r.MetricsEntries()
		if strings.HasSuffix(*metricsOut, ".csv") {
			err = metrics.WriteCSV(f, ents)
		} else {
			err = metrics.WriteJSONL(f, ents)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *metricsOut, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote metrics for %d cell(s) to %s\n", len(ents), *metricsOut)
	}

	save := func(name, out string) {
		if *outDir == "" {
			return
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "outdir: %v\n", err)
			os.Exit(1)
		}
		path := *outDir + "/" + name + ".txt"
		if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", path, err)
			os.Exit(1)
		}
	}

	fmt.Print(exp.ReportHeader(r))
	if *runName == "all" {
		for _, e := range exp.Registry {
			start := time.Now()
			out := generate(e)
			fmt.Printf("\n%s\n(%s in %.1fs)\n", out, e.Name, time.Since(start).Seconds())
			fmt.Print(metricsFigure())
			save(e.Name, out)
		}
		exportMetrics()
		reportFailures()
		return
	}
	e, ok := exp.Lookup(*runName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; -list shows options\n", *runName)
		os.Exit(1)
	}
	fmt.Println()
	out := generate(e)
	fmt.Print(out)
	fmt.Print(metricsFigure())
	save(e.Name, out)
	exportMetrics()
	reportFailures()
}
