package main

import (
	"flag"
	"fmt"
	"os"

	"memnet/internal/calib"
)

// runCalibrate executes the model-calibration harness and prints the
// pinned accuracy report. The report is a pure function of the model and
// the reference table — no wall time, no host details — so results/
// calibration.txt can be committed as a golden and CI can fail on drift.
// The harness has its own operating-point durations (150us/40us): the
// CLI's -simtime/-warmup defaults are ignored unless set explicitly.
func runCalibrate(jobs int, simtimeF, warmupF, outDir string) {
	if jobs < 1 {
		fmt.Fprintf(os.Stderr, "bad -jobs: need at least 1 worker, got %d\n", jobs)
		os.Exit(1)
	}
	opts := calib.Options{Jobs: jobs}
	var err error
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "simtime":
			if opts.SimTime, err = parseDuration(simtimeF); err != nil {
				fmt.Fprintf(os.Stderr, "bad -simtime: %v\n", err)
				os.Exit(1)
			}
			if opts.SimTime <= 0 {
				fmt.Fprintf(os.Stderr, "bad -simtime: must be positive, got %s\n", simtimeF)
				os.Exit(1)
			}
		case "warmup":
			if opts.Warmup, err = parseDuration(warmupF); err != nil {
				fmt.Fprintf(os.Stderr, "bad -warmup: %v\n", err)
				os.Exit(1)
			}
			if opts.Warmup < 0 {
				fmt.Fprintf(os.Stderr, "bad -warmup: must be non-negative, got %s\n", warmupF)
				os.Exit(1)
			}
		case "run", "coordinator", "worker", "list":
			fmt.Fprintf(os.Stderr, "bad -calibrate: mutually exclusive with -%s\n", f.Name)
			os.Exit(1)
		}
	})
	rep, err := calib.Evaluate(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "calibrate: %v\n", err)
		os.Exit(1)
	}
	out := rep.Render()
	fmt.Print(out)
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "outdir: %v\n", err)
			os.Exit(1)
		}
		path := outDir + "/calibration.txt"
		if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", path, err)
			os.Exit(1)
		}
	}
	if !rep.Pass() {
		fmt.Fprintln(os.Stderr, "calibrate: model outside published tolerances (see report above)")
		os.Exit(1)
	}
}
