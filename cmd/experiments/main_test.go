package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCLI compiles this command once into a temp dir so the validation
// cases below exercise the real flag-parsing path end to end.
func buildCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "experiments")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestRecoveryFlagValidation: malformed recovery flags must be rejected
// before any cell runs, each naming the offending flag; a valid
// combination must still generate output (a static table keeps it cheap).
func TestRecoveryFlagValidation(t *testing.T) {
	bin := buildCLI(t)
	for name, args := range map[string][]string{
		"negative crcretries": {"-run", "tableI", "-crcretries", "-1"},
		"unparseable retrain": {"-run", "tableI", "-retrain", "bogus"},
		"zero retrain":        {"-run", "tableI", "-retrain", "0s"},
		"negative retrain":    {"-run", "tableI", "-retrain", "-1us"},
	} {
		out, err := exec.Command(bin, args...).CombinedOutput()
		if err == nil {
			t.Errorf("%s: accepted\n%s", name, out)
			continue
		}
		if !strings.Contains(string(out), "bad -") {
			t.Errorf("%s: error does not name the flag:\n%s", name, out)
		}
	}

	out, err := exec.Command(bin, "-run", "tableI", "-retrain", "1us", "-crcretries", "4").CombinedOutput()
	if err != nil {
		t.Fatalf("valid recovery flags rejected: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "Table I") {
		t.Fatalf("run with recovery flags produced no table:\n%s", out)
	}
}
