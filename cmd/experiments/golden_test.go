package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// update regenerates the golden files from the current binary:
//
//	go test ./cmd/experiments -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files from current output")

// checkGolden compares got against testdata/<name>.golden byte-for-byte
// (the experiments CLI prints no wall-clock timing on these paths),
// rewriting the file under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatalf("update %s: %v", path, err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s (run with -update to create): %v", path, err)
	}
	if string(got) != string(want) {
		t.Errorf("%s: output differs from golden (regenerate deliberately with -update)\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

// TestGoldenOutput locks the default text output byte-for-byte: the
// experiment list, two light analytic experiments, and one simulating
// sweep under the parallel executor. The goldens were captured before the
// metrics subsystem landed, so a pass here also proves the
// disabled-metrics path leaves output untouched.
func TestGoldenOutput(t *testing.T) {
	bin := buildCLI(t)
	cases := []struct {
		name string
		args []string
	}{
		{"list", []string{"-list"}},
		{"tableI", []string{"-run", "tableI"}},
		{"fig4", []string{"-run", "fig4"}},
		{"avail", []string{"-run", "avail", "-simtime", "220us", "-warmup", "20us", "-jobs", "2"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := exec.Command(bin, tc.args...).CombinedOutput()
			if err != nil {
				t.Fatalf("%v: %v\n%s", tc.args, err, out)
			}
			checkGolden(t, tc.name, out)
		})
	}
}

// TestGoldenFaultMetricsSweep locks the fault + metrics sweep pipeline
// byte for byte across every artifact the CLI writes: the avail
// experiment (a module outage with timeout-retried reads) with the
// metrics sampler armed must reproduce the stdout report, the -outdir
// figure file, the resumable journal, and the CSV metrics export
// exactly. The goldens were captured before the timing-wheel event
// queue landed, so a pass proves the wheel preserved the (at, seq)
// event order through a parallel multi-topology sweep. The 427 KB CSV
// is pinned by hash rather than committed wholesale.
func TestGoldenFaultMetricsSweep(t *testing.T) {
	bin := buildCLI(t)
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "m.csv")
	journalPath := filepath.Join(dir, "j.jsonl")
	outDir := filepath.Join(dir, "out")
	// .Output(), not .CombinedOutput(): stderr carries the export and
	// journal notices, whose paths vary per run.
	out, err := exec.Command(bin, "-run", "avail",
		"-simtime", "220us", "-warmup", "20us", "-jobs", "2",
		"-metrics", "-metrics-interval", "20us",
		"-metrics-out", csvPath, "-journal", journalPath, "-outdir", outDir).Output()
	if err != nil {
		t.Fatalf("fault+metrics sweep: %v", err)
	}
	checkGolden(t, "fault_metrics_sweep", out)

	fig, err := os.ReadFile(filepath.Join(outDir, "avail.txt"))
	if err != nil {
		t.Fatalf("read -outdir figure: %v", err)
	}
	checkGolden(t, "fault_metrics_figure", fig)

	j, err := os.ReadFile(journalPath)
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}
	checkGolden(t, "fault_metrics_journal", j)

	csv, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatalf("read metrics export: %v", err)
	}
	digest := fmt.Sprintf("sha256:%x bytes:%d\n", sha256.Sum256(csv), len(csv))
	checkGolden(t, "fault_metrics_export", []byte(digest))
}

// TestGoldenCalibrate pins the model-calibration report byte for byte.
// The report carries no wall time and its sweep is order-preserving, so
// the same bytes must come back at any -jobs value, and the -outdir copy
// must equal stdout exactly (that copy is what results/calibration.txt
// is generated from).
func TestGoldenCalibrate(t *testing.T) {
	bin := buildCLI(t)
	dir := t.TempDir()
	out, err := exec.Command(bin, "-calibrate", "-jobs", "2", "-outdir", dir).Output()
	if err != nil {
		t.Fatalf("-calibrate: %v", err)
	}
	checkGolden(t, "calibrate", out)

	seq, err := exec.Command(bin, "-calibrate", "-jobs", "1").Output()
	if err != nil {
		t.Fatalf("-calibrate -jobs 1: %v", err)
	}
	if string(seq) != string(out) {
		t.Error("-calibrate output differs between -jobs 1 and -jobs 2")
	}

	saved, err := os.ReadFile(filepath.Join(dir, "calibration.txt"))
	if err != nil {
		t.Fatalf("read -outdir report: %v", err)
	}
	if string(saved) != string(out) {
		t.Error("-outdir calibration.txt differs from stdout")
	}
}

// TestCalibrateFlagValidation: -calibrate owns the process, so it must
// reject the run/distribution flags loudly rather than ignore them.
func TestCalibrateFlagValidation(t *testing.T) {
	bin := buildCLI(t)
	for name, args := range map[string][]string{
		"with -run":         {"-calibrate", "-run", "tableI"},
		"with -list":        {"-calibrate", "-list"},
		"with -coordinator": {"-calibrate", "-coordinator", ":0"},
		"with -worker":      {"-calibrate", "-worker", "http://x"},
		"bad simtime":       {"-calibrate", "-simtime", "bogus"},
		"zero simtime":      {"-calibrate", "-simtime", "0s"},
		"negative warmup":   {"-calibrate", "-warmup", "-1us"},
		"zero jobs":         {"-calibrate", "-jobs", "0"},
	} {
		out, err := exec.Command(bin, args...).CombinedOutput()
		if err == nil {
			t.Errorf("%s: accepted\n%s", name, out)
			continue
		}
		if !strings.Contains(string(out), "bad -") {
			t.Errorf("%s: error does not name the flag:\n%s", name, out)
		}
	}
}

// TestMetricsFlagValidation mirrors the memnetsim checks for this CLI's
// stderr/exit-code error style.
func TestMetricsFlagValidation(t *testing.T) {
	bin := buildCLI(t)
	for name, args := range map[string][]string{
		"out without metrics":      {"-run", "avail", "-metrics-out", "x.jsonl"},
		"interval without metrics": {"-run", "avail", "-metrics-interval", "5us"},
		"unparseable interval":     {"-run", "avail", "-metrics", "-metrics-interval", "bogus"},
		"zero interval":            {"-run", "avail", "-metrics", "-metrics-interval", "0s"},
	} {
		out, err := exec.Command(bin, args...).CombinedOutput()
		if err == nil {
			t.Errorf("%s: accepted\n%s", name, out)
			continue
		}
		if !strings.Contains(string(out), "bad -") {
			t.Errorf("%s: error does not name the flag:\n%s", name, out)
		}
	}

	outPath := filepath.Join(t.TempDir(), "m.csv")
	out, err := exec.Command(bin, "-run", "avail", "-simtime", "60us", "-warmup", "20us",
		"-metrics", "-metrics-interval", "20us", "-metrics-out", outPath).CombinedOutput()
	if err != nil {
		t.Fatalf("valid -metrics run failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "metrics: ") {
		t.Errorf("-metrics run printed no aggregate time-series figure:\n%s", out)
	}
	data, err := os.ReadFile(outPath)
	if err != nil || !strings.HasPrefix(string(data), "key,series,kind,tick,time_ps,bucket_le,value") {
		t.Errorf("-metrics-out CSV export missing or malformed (err=%v):\n%.200s", err, data)
	}
}
