package main

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

// TestDistributedSmoke is the real-process churn check behind the
// `make distsmoke` CI step: a coordinator serving the avail sweep (which
// includes fault-scenario cells), two workers, one of them SIGKILLed
// mid-sweep, and a replacement joining afterwards. The coordinator's
// stdout, journal, and rendered figure files must be byte-identical to a
// single-process -jobs 1 run of the same sweep.
func TestDistributedSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed smoke skipped in -short mode")
	}
	bin := buildCLI(t)
	dir := t.TempDir()
	args := func(extra ...string) []string {
		return append([]string{"-run", "avail", "-simtime", "220us", "-warmup", "20us"}, extra...)
	}

	// Single-process reference.
	refOut, err := exec.Command(bin, args("-jobs", "1",
		"-journal", filepath.Join(dir, "ref.jsonl"), "-outdir", filepath.Join(dir, "ref"))...).Output()
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	// Coordinator on an ephemeral port; its stderr announces the address
	// and every lease grant.
	coord := exec.CommandContext(ctx, bin, args("-coordinator", "127.0.0.1:0", "-lease", "1s",
		"-journal", filepath.Join(dir, "dist.jsonl"), "-outdir", filepath.Join(dir, "dist"))...)
	var coordOut bytes.Buffer
	coord.Stdout = &coordOut
	stderr, err := coord.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	defer coord.Process.Kill()

	// Scan coordinator stderr: first for the resolved address, then for
	// lease grants (to time the kill), keeping a transcript for failures.
	addrCh := make(chan string, 1)
	leaseCh := make(chan string, 64)
	var coordErr bytes.Buffer
	go func() {
		sc := bufio.NewScanner(stderr)
		addrRe := regexp.MustCompile(`listening on (http://\S+)`)
		leaseRe := regexp.MustCompile(`leased cell \d+ \(.*\) to (\S+)`)
		for sc.Scan() {
			line := sc.Text()
			coordErr.WriteString(line + "\n")
			if m := addrRe.FindStringSubmatch(line); m != nil {
				addrCh <- m[1]
			}
			if m := leaseRe.FindStringSubmatch(line); m != nil {
				select {
				case leaseCh <- m[1]:
				default:
				}
			}
		}
	}()
	var coordURL string
	select {
	case coordURL = <-addrCh:
	case <-time.After(30 * time.Second):
		t.Fatalf("coordinator never announced its address:\n%s", coordErr.String())
	}

	startWorker := func(name string) *exec.Cmd {
		w := exec.CommandContext(ctx, bin, "-worker", coordURL)
		w.Stdout = os.Stderr
		w.Stderr = os.Stderr
		if err := w.Start(); err != nil {
			t.Fatalf("start %s: %v", name, err)
		}
		return w
	}
	victim := startWorker("victim")
	victimName := fmt.Sprintf("worker-%d", victim.Process.Pid)
	survivor := startWorker("survivor")
	defer survivor.Process.Kill()

	// SIGKILL the victim once it holds a lease — its cell dies mid-run,
	// the lease expires, and the cell is reassigned.
	killed := false
	deadline := time.After(60 * time.Second)
	for !killed {
		select {
		case owner := <-leaseCh:
			if owner == victimName {
				victim.Process.Kill()
				victim.Wait()
				killed = true
			}
		case <-deadline:
			t.Fatalf("victim %s never got a lease:\n%s", victimName, coordErr.String())
		}
	}
	replacement := startWorker("replacement")
	defer replacement.Process.Kill()

	if err := coord.Wait(); err != nil {
		t.Fatalf("coordinator exited non-zero: %v\nstderr:\n%s", err, coordErr.String())
	}
	if err := survivor.Wait(); err != nil {
		t.Errorf("survivor worker exited non-zero: %v", err)
	}
	if err := replacement.Wait(); err != nil {
		t.Errorf("replacement worker exited non-zero: %v", err)
	}
	if !strings.Contains(coordErr.String(), "expired") {
		t.Errorf("kill did not bite: no lease expiry in coordinator log:\n%s", coordErr.String())
	}

	// Byte-identical merge: stdout, journal, and figure files.
	if got := coordOut.String(); got != string(refOut) {
		t.Errorf("distributed stdout differs from single-process run\n--- single ---\n%s--- distributed ---\n%s", refOut, got)
	}
	ref, err := os.ReadFile(filepath.Join(dir, "ref.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dir, "dist.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ref, got) {
		t.Errorf("distributed journal differs from single-process run")
	}
	refFig, err := os.ReadFile(filepath.Join(dir, "ref", "avail.txt"))
	if err != nil {
		t.Fatal(err)
	}
	gotFig, err := os.ReadFile(filepath.Join(dir, "dist", "avail.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refFig, gotFig) {
		t.Errorf("rendered figure differs:\n--- single ---\n%s--- distributed ---\n%s", refFig, gotFig)
	}
}
