// Distributed sweep execution: -coordinator serves every experiment's
// cell sweep to workers over HTTP; -worker joins a coordinator and runs
// cells until the whole session is done. Rendered figures and the
// journal are byte-identical to a single-process -jobs 1 run.
package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"memnet/internal/dist"
	"memnet/internal/exp"
)

// distCoordinator owns the HTTP listener and coordinator for one
// experiments session. Each experiment submits its uncached cells as
// one batch; workers poll-wait between batches and drain after close().
type distCoordinator struct {
	c   *dist.Coordinator
	srv *http.Server
}

// startCoordinator brings up the coordinator on addr. It takes over the
// journal: in distributed mode the coordinator owns journaling (the
// runner must not also append).
func startCoordinator(addr string, lease time.Duration, j *exp.Journal, loaded map[string]exp.Result) *distCoordinator {
	c := dist.NewCoordinator(dist.Config{
		LeaseTTL: lease,
		Journal:  j,
		Loaded:   loaded,
		Logf:     logfStderr,
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad -coordinator: %v\n", err)
		os.Exit(1)
	}
	// The resolved address goes to stderr so scripts binding ":0" can
	// discover the port.
	fmt.Fprintf(os.Stderr, "coordinator: listening on http://%s\n", ln.Addr())
	srv := &http.Server{Handler: c.Handler()}
	go srv.Serve(ln)
	return &distCoordinator{c: c, srv: srv}
}

// sweep runs one experiment's uncached work list through the workers
// and returns results and errors aligned with specs.
func (d *distCoordinator) sweep(specs []exp.Spec) ([]exp.Result, []error) {
	batch := d.c.Submit(specs)
	results, errs, err := batch.Wait(context.Background())
	if err != nil {
		fmt.Fprintf(os.Stderr, "coordinator: %v\n", err)
		os.Exit(1)
	}
	if err := d.c.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "coordinator: %v\n", err)
		os.Exit(1)
	}
	return results, errs
}

// close declares the session over — the next claim from each worker
// answers "done" — waits for the workers to drain, and reports
// coordinator stats.
func (d *distCoordinator) close() {
	d.c.Close()
	if !d.c.DrainWorkers(0) {
		fmt.Fprintf(os.Stderr, "coordinator: drain timed out; some workers may exit with a connection error\n")
	}
	st := d.c.Stats()
	fmt.Fprintf(os.Stderr,
		"coordinator: %d cells done (%d restored, %d failed), %d leases expired, %d duplicate, %d late\n",
		st.Done, st.Restored, st.Failed, st.LeasesExpired, st.DuplicateResults, st.LateResults)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	d.srv.Shutdown(ctx)
}

// runWorkerMode joins the coordinator at url and executes cells until
// the session completes. fallbackPath, when set, is the local salvage
// journal for results the worker finished but could not deliver.
// SIGINT/SIGTERM cancels the worker: the in-flight cell aborts at the
// next kernel check and is reassigned when its lease expires.
func runWorkerMode(url, fallbackPath string) {
	ctx, stopSignals := interruptContext()
	defer stopSignals()
	var fb *exp.Journal
	if fallbackPath != "" {
		j, loaded, err := exp.OpenJournal(fallbackPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad -journal: %v\n", err)
			os.Exit(1)
		}
		if len(loaded) > 0 {
			fmt.Fprintf(os.Stderr, "worker: fallback journal already holds %d salvaged cell(s)\n", len(loaded))
		}
		fb = j
	}
	stats, err := dist.RunWorker(ctx, dist.WorkerConfig{
		Coordinator: url,
		Fallback:    fb,
		Logf:        logfStderr,
	})
	if fb != nil {
		fb.Close()
	}
	fmt.Printf("worker: ran %d cell(s), delivered %d, salvaged %d (%d RPC retries)\n",
		stats.CellsRun, stats.CellsDelivered, stats.Salvaged, stats.RPCRetries)
	if errors.Is(err, context.Canceled) {
		exitInterrupted("worker: interrupted; abandoned cell will be reassigned when its lease expires")
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "worker: %v\n", err)
		os.Exit(1)
	}
}

func logfStderr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}
