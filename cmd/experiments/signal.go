package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"
)

// interruptContext returns a context canceled on the first SIGINT or
// SIGTERM, so in-flight simulations abort within one kernel check
// interval instead of dying mid-write: journal entries already appended
// are fsynced, and the caller gets control back to flush profiles and
// print a partial-results summary before exiting non-zero. A second
// signal exits immediately (status 2) for the impatient.
//
// The returned stop function detaches the handler; call it once the
// run completes so a late ^C behaves normally again.
func interruptContext() (context.Context, func()) {
	ctx, cancel := context.WithCancel(context.Background())
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig, ok := <-ch
		if !ok {
			return
		}
		fmt.Fprintf(os.Stderr,
			"%v: canceling in-flight runs (journaled results are safe; signal again to exit now)\n", sig)
		cancel()
		if sig2, ok := <-ch; ok {
			fmt.Fprintf(os.Stderr, "%v again: exiting immediately\n", sig2)
			os.Exit(2)
		}
	}()
	return ctx, func() {
		signal.Stop(ch)
		close(ch)
		cancel()
	}
}

// exitInterrupted is the common interrupted-exit path: flush profiles
// (os.Exit skips defers) and exit 130, the conventional SIGINT status.
func exitInterrupted(summary string) {
	fmt.Fprintln(os.Stderr, summary)
	stopProfiles()
	os.Exit(130)
}
