// Distributed sweep execution: -coordinator serves a -config batch to
// workers over HTTP; -worker joins a coordinator and runs cells until
// the sweep is done. The merged journal and stdout report are
// byte-identical to a single-process -jobs 1 run of the same config.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"memnet/internal/dist"
	"memnet/internal/exp"
)

// serveBatch runs the batch's cells through a coordinator listening on
// addr instead of the local pool, blocking until every cell is done.
// Results and errors align with specs, exactly like RunSpecsJournaled.
func serveBatch(addr string, lease time.Duration, specs []exp.Spec,
	j *exp.Journal, loaded map[string]exp.Result) ([]exp.Result, []error) {
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	c := dist.NewCoordinator(dist.Config{
		LeaseTTL: lease,
		Journal:  j,
		Loaded:   loaded,
		Logf:     logf,
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("bad -coordinator: %v", err)
	}
	// The resolved address goes to stderr so scripts binding ":0" can
	// discover the port.
	fmt.Fprintf(os.Stderr, "coordinator: listening on http://%s\n", ln.Addr())
	srv := &http.Server{Handler: c.Handler()}
	go srv.Serve(ln)

	batch := c.Submit(specs)
	c.Close()
	results, errs, err := batch.Wait(context.Background())
	if err != nil {
		log.Fatalf("coordinator: %v", err)
	}
	if err := c.Err(); err != nil {
		log.Fatalf("coordinator: %v", err)
	}
	if !c.DrainWorkers(0) {
		fmt.Fprintf(os.Stderr, "coordinator: drain timed out; some workers may exit with a connection error\n")
	}
	st := c.Stats()
	fmt.Fprintf(os.Stderr,
		"coordinator: %d cells done (%d restored, %d failed), %d leases expired, %d duplicate, %d late\n",
		st.Done, st.Restored, st.Failed, st.LeasesExpired, st.DuplicateResults, st.LateResults)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(shutdownCtx)
	return results, errs
}

// runWorkerMode joins the coordinator at url and executes cells until
// the sweep completes (the lease TTL is the coordinator's to grant).
// fallbackPath, when set, is the local salvage journal for results the
// worker finished but could not deliver. SIGINT/SIGTERM cancels the
// worker's context: the in-flight cell aborts at the next kernel check,
// its lease expires and the coordinator reassigns it, and the worker
// exits 130 after reporting what it delivered.
func runWorkerMode(url, fallbackPath string) {
	ctx, stopSignals := interruptContext()
	defer stopSignals()
	var fb *exp.Journal
	if fallbackPath != "" {
		j, loaded, err := exp.OpenJournal(fallbackPath)
		if err != nil {
			log.Fatalf("bad -journal: %v", err)
		}
		if len(loaded) > 0 {
			fmt.Fprintf(os.Stderr, "worker: fallback journal already holds %d salvaged cell(s)\n", len(loaded))
		}
		fb = j
	}
	stats, err := dist.RunWorker(ctx, dist.WorkerConfig{
		Coordinator: url,
		Fallback:    fb,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if fb != nil {
		fb.Close()
	}
	fmt.Printf("worker: ran %d cell(s), delivered %d, salvaged %d (%d RPC retries)\n",
		stats.CellsRun, stats.CellsDelivered, stats.Salvaged, stats.RPCRetries)
	if errors.Is(err, context.Canceled) {
		exitInterrupted("worker: interrupted; abandoned cell will be reassigned when its lease expires")
	}
	if err != nil {
		log.Fatalf("worker: %v", err)
	}
}

// countPanics reports how many of errs wrap a recovered cell panic.
func countPanics(errs []error) int {
	n := 0
	for _, err := range errs {
		var pe *exp.PanicError
		if errors.As(err, &pe) {
			n++
		}
	}
	return n
}
