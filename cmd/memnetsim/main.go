// Command memnetsim runs one memory-network simulation and reports power,
// performance and utilization; with -trace it also prints per-epoch
// management decisions (mode selections, AMS budgets, violations).
//
// Example:
//
//	memnetsim -wl mixB -topo star -size small -mech VWL+ROO -policy aware -alpha 0.05
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"memnet/internal/audit"
	"memnet/internal/core"
	"memnet/internal/dist"
	"memnet/internal/exp"
	"memnet/internal/fault"
	"memnet/internal/link"
	"memnet/internal/metrics"
	"memnet/internal/network"
	"memnet/internal/sim"
	"memnet/internal/topology"
	"memnet/internal/viz"
	"memnet/internal/workload"
)

func main() {
	// The simulator's live heap is a few MB (pooled events, per-cell
	// models), but each sweep cell's construction churns tens of MB, so
	// the default GOGC=100 trigger fires a collection every ~50 ms and
	// keeps write barriers armed on the event queue's hottest stores for
	// a third of the run. Letting the heap grow several multiples first
	// trades tens of MB of peak RSS for those cycles back.
	debug.SetGCPercent(600)

	wlName := flag.String("wl", "mixB", "workload profile")
	topoName := flag.String("topo", "star", "daisychain | 'ternary tree' | star | DDRx-like")
	sizeName := flag.String("size", "small", "small (4GB/module) or big (1GB/module)")
	mechName := flag.String("mech", "VWL+ROO", "link power mechanism")
	policyName := flag.String("policy", "aware", "none | unaware | aware | static")
	alpha := flag.Float64("alpha", 0.05, "allowable slowdown factor")
	simtime := flag.String("simtime", "400us", "measured simulated interval")
	warmupF := flag.String("warmup", "100us", "simulated warmup")
	wakeup := flag.Int("wakeup", 14, "ROO wakeup latency (ns)")
	trace := flag.Bool("trace", false, "print per-epoch management trace")
	config := flag.String("config", "", "JSON batch config (overrides the single-run flags)")
	faultsFile := flag.String("faults", "", "JSON fault scenario file (see EXPERIMENTS.md)")
	timeoutF := flag.String("timeout", "", "per-request timeout, e.g. 2us (empty = wait forever)")
	retries := flag.Int("retries", 2, "timeout-driven read retries (with -timeout)")
	retrainF := flag.String("retrain", "", "link retraining latency for repair/escalation, e.g. 1us (empty = model default)")
	crcRetries := flag.Int("crcretries", 0, "consecutive CRC retries per packet before escalation (0 = model default)")
	watchdog := flag.Bool("watchdog", false, "arm the no-progress watchdog")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0),
		"parallel workers for -config batches and -sweepbench (1 = legacy sequential)")
	sweepbench := flag.String("sweepbench", "",
		"run the standard benchmark sweep at -jobs 1 and -jobs N and write the comparison JSON to this path")
	auditEvery := flag.Int("audit", audit.DefaultSampleEvery,
		"invariant auditor sampling stride (1 = check every observation, 0 = disable)")
	journalPath := flag.String("journal", "",
		"with -config: append completed runs to this JSON-lines file and resume from it on restart")
	metricsOn := flag.Bool("metrics", false,
		"sample epoch-resolution metrics over the measured interval and print a time-series figure")
	metricsIntervalF := flag.String("metrics-interval", "10us", "metrics sampling period (with -metrics)")
	metricsOut := flag.String("metrics-out", "",
		"write sampled metrics to this file; .csv gets CSV, anything else JSON lines (with -metrics)")
	coordAddr := flag.String("coordinator", "",
		"with -config: serve the batch to distributed workers on this address (e.g. :9731) instead of running locally")
	workerURL := flag.String("worker", "",
		"run as a sweep worker against this coordinator URL (e.g. http://host:9731); -journal becomes the local salvage journal")
	leaseF := flag.String("lease", "", "coordinator lease TTL granted to workers (default 10s)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile (taken at exit, after a final GC) to this file")
	flag.Parse()

	lease := dist.DefaultLeaseTTL
	if *leaseF != "" {
		d, err := time.ParseDuration(*leaseF)
		if err != nil {
			log.Fatalf("bad -lease: %v", err)
		}
		if d <= 0 {
			log.Fatalf("bad -lease: must be positive, got %s", *leaseF)
		}
		lease = d
	}
	if *leaseF != "" && *coordAddr == "" {
		log.Fatalf("bad -lease: requires -coordinator")
	}
	if *workerURL != "" {
		if *coordAddr != "" || *config != "" {
			log.Fatalf("bad -worker: mutually exclusive with -coordinator and -config")
		}
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "cpuprofile" || f.Name == "memprofile" {
				log.Fatalf("bad -%s: not supported with -worker (profiles flush only at a clean exit)", f.Name)
			}
		})
		runWorkerMode(*workerURL, *journalPath)
		return
	}
	if *coordAddr != "" && *config == "" {
		log.Fatalf("bad -coordinator: requires -config (it serves a batch)")
	}
	if *jobs < 1 {
		log.Fatalf("bad -jobs: need at least 1 worker, got %d", *jobs)
	}
	if *auditEvery < 0 {
		log.Fatalf("bad -audit: stride must be >= 0 (0 disables), got %d", *auditEvery)
	}
	if *retries < 0 {
		log.Fatalf("bad -retries: must be non-negative, got %d", *retries)
	}
	if *crcRetries < 0 {
		log.Fatalf("bad -crcretries: must be non-negative (0 = model default), got %d", *crcRetries)
	}
	var retrainDur sim.Duration
	if *retrainF != "" {
		rt, err := time.ParseDuration(*retrainF)
		if err != nil {
			log.Fatalf("bad -retrain: %v", err)
		}
		if rt <= 0 {
			log.Fatalf("bad -retrain: must be positive, got %s", *retrainF)
		}
		retrainDur = sim.Duration(rt.Nanoseconds()) * sim.Nanosecond
	}
	if *wakeup <= 0 {
		log.Fatalf("bad -wakeup: must be a positive nanosecond count, got %d", *wakeup)
	}
	if *alpha < 0 {
		log.Fatalf("bad -alpha: slowdown factor must be non-negative, got %g", *alpha)
	}
	if !*metricsOn {
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "metrics-interval" || f.Name == "metrics-out" {
				log.Fatalf("bad -%s: requires -metrics", f.Name)
			}
		})
	}
	var metricsIv sim.Duration
	if *metricsOn {
		mi, err := time.ParseDuration(*metricsIntervalF)
		if err != nil {
			log.Fatalf("bad -metrics-interval: %v", err)
		}
		if mi <= 0 {
			log.Fatalf("bad -metrics-interval: must be positive, got %s", *metricsIntervalF)
		}
		metricsIv = sim.Duration(mi.Nanoseconds()) * sim.Nanosecond
	}

	stop, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		log.Fatal(err)
	}
	stopProfiles = stop
	defer stopProfiles()

	if *sweepbench != "" {
		if *metricsOn {
			log.Fatalf("bad -metrics: not supported with -sweepbench (it times its own metrics pass)")
		}
		// No interrupt context here on purpose: arming a cancelable
		// kernel check is exactly the overhead the bench measures in a
		// separate pass, so the timed runs stay unarmed.
		runSweepBench(*sweepbench, *jobs)
		return
	}

	ctx, stopSignals := interruptContext()
	defer stopSignals()

	if *config != "" {
		runBatch(ctx, *config, *jobs, *auditEvery, *journalPath, retrainDur, *crcRetries, metricsIv, *metricsOut,
			*coordAddr, lease)
		return
	}

	wl, err := workload.ByName(*wlName)
	if err != nil {
		log.Fatal(err)
	}
	kind, err := topology.ParseKind(*topoName)
	if err != nil {
		log.Fatal(err)
	}
	mech, err := exp.ParseMech(*mechName)
	if err != nil {
		log.Fatal(err)
	}
	policy, err := exp.ParsePolicy(*policyName)
	if err != nil {
		log.Fatal(err)
	}
	size := exp.Small
	if *sizeName == "big" {
		size = exp.Big
	} else if *sizeName != "small" {
		log.Fatalf("unknown size %q", *sizeName)
	}
	st, err := time.ParseDuration(*simtime)
	if err != nil {
		log.Fatal(err)
	}
	if st <= 0 {
		log.Fatalf("bad -simtime: must be positive, got %s", *simtime)
	}
	wu, err := time.ParseDuration(*warmupF)
	if err != nil {
		log.Fatal(err)
	}
	if wu < 0 {
		log.Fatalf("bad -warmup: must be non-negative, got %s", *warmupF)
	}

	spec := exp.Spec{
		Workload: wl,
		Topology: kind,
		Size:     size,
		Mech:     mech,
		Policy:   policy,
		Alpha:    *alpha,
		Wakeup:   sim.Duration(*wakeup) * sim.Nanosecond,
		SimTime:  sim.Duration(st.Nanoseconds()) * sim.Nanosecond,
		Warmup:   sim.Duration(wu.Nanoseconds()) * sim.Nanosecond,
		Watchdog: *watchdog,
	}
	if *auditEvery > 0 {
		spec.AuditEvery = *auditEvery
	} else {
		spec.AuditEvery = -1
	}
	if *faultsFile != "" {
		sc, err := fault.LoadScenario(*faultsFile)
		if err != nil {
			log.Fatal(err)
		}
		spec.Faults = sc
	}
	if *timeoutF != "" {
		to, err := time.ParseDuration(*timeoutF)
		if err != nil {
			log.Fatal(err)
		}
		if to <= 0 {
			log.Fatalf("bad -timeout: must be positive, got %s", *timeoutF)
		}
		spec.RequestTimeout = sim.Duration(to.Nanoseconds()) * sim.Nanosecond
		spec.MaxRetries = *retries
	}
	spec.RetrainLatency = retrainDur
	spec.CRCRetryLimit = *crcRetries
	spec.MetricsInterval = metricsIv

	if *trace {
		if *metricsOn {
			log.Fatalf("bad -metrics: not supported with -trace (the trace is already per-epoch)")
		}
		runTrace(spec)
		return
	}

	start := time.Now()
	res, err := exp.RunCtx(ctx, spec)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			exitInterrupted(fmt.Sprintf(
				"interrupted after %.2fs wall; no result (single runs have nothing partial to keep)",
				time.Since(start).Seconds()))
		}
		log.Fatal(err)
	}
	report(res, time.Since(start))
	if *metricsOn {
		fmt.Print(viz.RenderTimeSeries(res.Metrics))
		writeMetricsFile(*metricsOut, []metrics.Entry{{Key: spec.Key(), Dump: res.Metrics}})
	}
}

// writeMetricsFile exports sampled metrics, picking the format from the
// file extension (.csv gets CSV, anything else JSON lines). An empty
// path is a no-op so callers can pass -metrics-out through unchecked.
func writeMetricsFile(path string, entries []metrics.Entry) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatalf("bad -metrics-out: %v", err)
	}
	defer f.Close()
	if strings.HasSuffix(path, ".csv") {
		err = metrics.WriteCSV(f, entries)
	} else {
		err = metrics.WriteJSONL(f, entries)
	}
	if err != nil {
		log.Fatalf("write %s: %v", path, err)
	}
	fmt.Printf("wrote metrics to %s\n", path)
}

// runBatch executes every run in a JSON config file across jobs workers;
// reports print in config order regardless of completion order. A failed
// run (audit violation, stall, recovered panic) is reported in place and
// flips the exit status without aborting the remaining runs; with
// -journal, completed runs are restored on restart instead of re-run.
// With coordAddr the cells are served to distributed workers instead of
// the local pool; the report and journal stay byte-identical. SIGINT or
// SIGTERM cancels ctx: in-flight cells abort at the next kernel check,
// completed runs stay journaled, and the process exits 130 after a
// partial-results summary.
func runBatch(ctx context.Context, path string, jobs, auditEvery int, journalPath string, retrain sim.Duration,
	crcRetries int, metricsIv sim.Duration, metricsOut string, coordAddr string, lease time.Duration) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	specs, err := exp.LoadBatch(f)
	if err != nil {
		log.Fatal(err)
	}
	for i := range specs {
		if specs[i].AuditEvery == 0 {
			if auditEvery > 0 {
				specs[i].AuditEvery = auditEvery
			} else {
				specs[i].AuditEvery = -1
			}
		}
		if specs[i].RetrainLatency <= 0 {
			specs[i].RetrainLatency = retrain
		}
		if specs[i].CRCRetryLimit <= 0 {
			specs[i].CRCRetryLimit = crcRetries
		}
		if specs[i].MetricsInterval <= 0 {
			specs[i].MetricsInterval = metricsIv
		}
	}
	var j *exp.Journal
	loaded := map[string]exp.Result{}
	if journalPath != "" {
		j, loaded, err = exp.OpenJournal(journalPath)
		if err != nil {
			log.Fatal(err)
		}
		defer j.Close()
		if len(loaded) > 0 {
			fmt.Fprintf(os.Stderr, "journal: resuming with %d completed run(s) from %s\n", len(loaded), journalPath)
		}
	}
	start := time.Now()
	var results []exp.Result
	var errs []error
	if coordAddr != "" {
		results, errs = serveBatch(coordAddr, lease, specs, j, loaded)
	} else {
		results, errs = exp.RunSpecsJournaledCtx(ctx, specs, jobs, j, loaded)
	}
	if err := ctx.Err(); err != nil {
		completed := 0
		for _, e := range errs {
			if e == nil {
				completed++
			}
		}
		summary := fmt.Sprintf("interrupted: %d of %d runs completed", completed, len(specs))
		if j != nil {
			j.Close() // flush before os.Exit skips the defer
			summary += fmt.Sprintf("; rerun with -journal %s to resume", journalPath)
		}
		exitInterrupted(summary)
	}
	failed := 0
	var entries []metrics.Entry
	for i, res := range results {
		fmt.Printf("--- run %d/%d ---\n", i+1, len(specs))
		if errs[i] != nil {
			failed++
			fmt.Printf("FAILED: %v\n", errs[i])
			continue
		}
		report(res, 0) // per-run wall time is meaningless under the pool
		if res.Metrics != nil {
			fmt.Print(viz.RenderTimeSeries(res.Metrics))
			entries = append(entries, metrics.Entry{Key: specs[i].Key(), Dump: res.Metrics})
		}
	}
	writeMetricsFile(metricsOut, entries)
	fmt.Printf("batch: %d runs in %.2fs wall (-jobs %d)\n",
		len(specs), time.Since(start).Seconds(), jobs)
	if failed > 0 {
		if panicked := countPanics(errs); panicked > 0 {
			fmt.Fprintf(os.Stderr, "%d of %d runs failed (%d panicked)\n", failed, len(specs), panicked)
		} else {
			fmt.Fprintf(os.Stderr, "%d of %d runs failed\n", failed, len(specs))
		}
		// os.Exit skips defers: flush any armed profiles first.
		stopProfiles()
		os.Exit(1)
	}
}

// runSweepBench measures the sweep executor against the sequential path
// and writes the machine-readable record tracked across PRs. 150 µs
// cells keep each timed pass a couple of seconds long — the event queue
// got fast enough that 100 µs passes finished inside one clock phase of
// a noisy shared box — and MeasureSweep's interleaved min-of-N rounds
// keep the overhead ratios (held to an absolute budget by benchdiff)
// from comparing walls across a phase boundary.
func runSweepBench(path string, jobs int) {
	specs, err := exp.BenchSweepSpecs(150*sim.Microsecond, 25*sim.Microsecond)
	if err != nil {
		log.Fatal(err)
	}
	bench, err := exp.MeasureSweep(specs, jobs)
	if err != nil {
		log.Fatal(err)
	}
	if err := bench.WriteJSON(path); err != nil {
		log.Fatal(err)
	}
	fmt.Println(bench)
	fmt.Printf("wrote %s\n", path)
}

// report prints one run's results.
func report(res exp.Result, wall time.Duration) {
	spec := res.Spec
	fmt.Printf("workload %s on %s %s network (%d modules), %s links, %s policy, alpha=%.1f%%\n",
		spec.Workload.Name, spec.Size, spec.Topology, res.Modules, spec.Mech, spec.Policy, 100*spec.Alpha)
	fmt.Printf("  power/HMC:     %.3f W  (%s)\n", res.PerHMC.Total(), res.PerHMC)
	fmt.Printf("  idle I/O:      %.1f%% of total network power\n", 100*res.IdleIOFraction())
	fmt.Printf("  throughput:    %.1f M accesses/s\n", res.Throughput/1e6)
	fmt.Printf("  read latency:  %s avg, %s p50, %s p95, %s p99\n",
		res.AvgReadLatency, res.P50, res.P95, res.P99)
	fmt.Printf("  channel util:  %.1f%%   avg link util: %.1f%%\n", 100*res.ChannelUtil, 100*res.LinkUtil)
	fmt.Printf("  links/access:  %.2f\n", res.LinksPerAccess)
	fmt.Printf("  violations:    %d (%d absorbed by AMS grants)\n", res.Violations, res.Granted)
	if res.FaultsInjected.Total() > 0 || res.Faults.Dropped > 0 || res.FrontEndFaults.ReadTimeouts > 0 {
		fi := res.FaultsInjected
		fmt.Printf("  faults:        injected %d (link-fail=%d module-fail=%d corrupt=%d wake=%d stall=%d repair=%d)\n",
			fi.Total(), fi.LinkFails, fi.ModuleFails, fi.CorruptBursts, fi.WakeFaults, fi.VaultStalls,
			fi.LinkRepairs+fi.ModuleRepairs)
		fmt.Printf("  degradation:   %d reads + %d writes completed as errors, %d lost, %d dropped, %d routing errors, %d failed links\n",
			res.Faults.ReadsFailed, res.Faults.WritesFailed,
			res.Faults.LostReads+res.Faults.LostWrites, res.Faults.Dropped,
			res.Faults.RoutingErrors, res.Faults.FailedLinks)
		fe := res.FrontEndFaults
		fmt.Printf("  timeouts:      %d read deadlines (%d retried, %d abandoned), %d write credits reclaimed, %d late responses\n",
			fe.ReadTimeouts, fe.Retries, fe.Abandoned, fe.WriteTimeouts, fe.LateResponses)
	}
	esc := res.Faults.Escalations
	if res.Faults.RepairedLinks > 0 || res.Availability.Outages > 0 ||
		res.Availability.OpenOutages > 0 || esc.Degrades+esc.Retrains+esc.HardFails > 0 {
		a := res.Availability
		fmt.Printf("  recovery:      %d links repaired, escalations degrade=%d retrain=%d hard-fail=%d, %d reads recovered\n",
			res.Faults.RepairedLinks, esc.Degrades, esc.Retrains, esc.HardFails,
			res.FrontEndFaults.RecoveredReads)
		fmt.Printf("  availability:  %.6f (%d outages, %d open, MTTR %s, downtime %s)\n",
			a.Availability, a.Outages, a.OpenOutages, a.MTTR, a.Downtime)
	}
	if wall > 0 {
		fmt.Printf("  simulated %s in %.2fs wall (%.1fM events)\n",
			spec.SimTime+spec.Warmup, wall.Seconds(), float64(res.Events)/1e6)
	} else {
		fmt.Printf("  simulated %s (%.1fM events)\n",
			spec.SimTime+spec.Warmup, float64(res.Events)/1e6)
	}
}

// runTrace replays the spec with per-epoch reporting.
func runTrace(spec exp.Spec) {
	kernel := sim.NewKernel()
	n := spec.Workload.Modules(spec.Size.ChunkGB())
	topo, err := topology.Build(spec.Topology, n)
	if err != nil {
		log.Fatal(err)
	}
	cfg := network.DefaultConfig()
	cfg.Mechanism = spec.Mech.BW
	cfg.ROO = spec.Mech.ROO
	cfg.Wakeup = spec.Wakeup
	cfg.ChunkBytes = uint64(spec.Size.ChunkGB()) << 30
	net := network.New(kernel, topo, cfg)
	mgr := core.Attach(kernel, net, core.DefaultConfig(spec.Policy, spec.Alpha))
	fe, err := workload.NewFrontEnd(kernel, net, spec.Workload, workload.DefaultFrontEndConfig(42))
	if err != nil {
		log.Fatal(err)
	}
	fe.Start()
	fmt.Printf("%s on %v\n", fe, topo)

	epoch := 100 * sim.Microsecond
	total := spec.Warmup + spec.SimTime
	prev := net.TakeSnapshot()
	for now := epoch; now <= total; now += epoch {
		kernel.Run(now)
		snap := net.TakeSnapshot()
		viol, grant := mgr.Violations()
		fmt.Printf("epoch %3d: thr=%7.1fM/s lat=%9s chanUtil=%3.0f%% viol=%d grant=%d\n",
			int(now/epoch), network.Throughput(prev, snap)/1e6,
			network.AvgReadLatency(prev, snap), 100*network.ChannelUtilization(prev, snap),
			viol, grant)
		if os.Getenv("MEMNETSIM_LINKS") != "" {
			for li, l := range net.Links {
				fmt.Printf("   link%-3d %-8s d%d bw=%d roo=%d state=%d forced=%v maxq=%d\n",
					li, l.Dir, l.Depth, l.BWTarget(), l.ROOMode(), l.State(), l.Forced(), l.MaxQueue())
			}
		}
		prev = snap
	}
	_ = link.WakeupDefault
}
