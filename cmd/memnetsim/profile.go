package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// stopProfiles flushes any armed profiles. main swaps in the real stop
// function once profiling starts; until then it is a no-op so error
// paths can call it unconditionally. os.Exit skips defers, so exit
// paths that should still produce usable profiles call this directly.
var stopProfiles = func() {}

// startProfiles arms CPU and/or heap profiling per -cpuprofile and
// -memprofile. Both files are created up front so a bad path fails fast,
// before any simulation runs. The returned stop function flushes the
// profiles; it is idempotent, and exit paths that bypass defers
// (os.Exit) must call it explicitly or the files come out truncated.
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile, memFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("bad -cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("bad -cpuprofile: %v", err)
		}
		cpuFile = f
	}
	if memPath != "" {
		f, err := os.Create(memPath)
		if err != nil {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			return nil, fmt.Errorf("bad -memprofile: %v", err)
		}
		memFile = f
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memFile != nil {
			// Collect garbage first so the heap profile shows what the
			// run keeps live, not what the collector hasn't reached yet.
			runtime.GC()
			if err := pprof.WriteHeapProfile(memFile); err != nil {
				fmt.Fprintf(os.Stderr, "-memprofile: %v\n", err)
			}
			memFile.Close()
		}
	}, nil
}
