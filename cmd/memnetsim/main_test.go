package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCLI compiles this command once into a temp dir so the validation
// cases below exercise the real flag-parsing path end to end.
func buildCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "memnetsim")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestRecoveryFlagValidation: malformed recovery flags must be rejected
// before any simulation starts, each naming the offending flag; a valid
// combination must run to completion.
func TestRecoveryFlagValidation(t *testing.T) {
	bin := buildCLI(t)
	for name, args := range map[string][]string{
		"negative crcretries": {"-crcretries", "-1"},
		"unparseable retrain": {"-retrain", "bogus"},
		"zero retrain":        {"-retrain", "0s"},
		"negative retrain":    {"-retrain", "-1us"},
	} {
		out, err := exec.Command(bin, args...).CombinedOutput()
		if err == nil {
			t.Errorf("%s: accepted\n%s", name, out)
			continue
		}
		if !strings.Contains(string(out), "bad -") {
			t.Errorf("%s: error does not name the flag:\n%s", name, out)
		}
	}

	out, err := exec.Command(bin, "-retrain", "1us", "-crcretries", "4",
		"-simtime", "5us", "-warmup", "1us").CombinedOutput()
	if err != nil {
		t.Fatalf("valid recovery flags rejected: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "power/HMC") {
		t.Fatalf("run with recovery flags produced no report:\n%s", out)
	}
}
