package main

import (
	"bytes"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"memnet/internal/exp"
)

// TestInterruptFlushesJournal: SIGINT mid-batch must cancel in-flight
// runs promptly (kernel check, not simulation end), keep every
// already-completed run in the journal, print a partial-results summary
// naming the resume path, and exit 130. Before the interrupt plumbing,
// a ^C here lost the whole batch.
func TestInterruptFlushesJournal(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess interrupt test skipped in -short mode")
	}
	bin := buildCLI(t)
	dir := t.TempDir()

	// One fast cell that will finish, then slow cells the signal lands
	// on. -jobs 1 forces that ordering.
	cfg := filepath.Join(dir, "batch.json")
	if err := os.WriteFile(cfg, []byte(`{"runs":[
		{"workload":"mixG","simtime":"20us","warmup":"5us"},
		{"workload":"mixG","simtime":"1s","warmup":"5us","wakeup_ns":15},
		{"workload":"mixG","simtime":"1s","warmup":"5us","wakeup_ns":16}
	]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	journalPath := filepath.Join(dir, "journal.jsonl")

	cmd := exec.Command(bin, "-config", cfg, "-jobs", "1", "-journal", journalPath)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Wait for the fast cell to land in the journal so the interrupt has
	// something completed to preserve, then signal while a 1s-simtime
	// cell (minutes of wall time) is in flight. The running process holds
	// the journal flock, so watch the raw file rather than OpenJournal.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if b, err := os.ReadFile(journalPath); err == nil && bytes.Count(b, []byte("\n")) >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("first cell never reached the journal:\n%s", out.String())
		}
		time.Sleep(50 * time.Millisecond)
	}
	time.Sleep(300 * time.Millisecond) // let the slow cell enter its kernel
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}

	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	start := time.Now()
	var runErr error
	select {
	case runErr = <-waitErr:
	case <-time.After(30 * time.Second):
		t.Fatalf("memnetsim ignored SIGINT (in-flight cell never aborted):\n%s", out.String())
	}
	if d := time.Since(start); d > 15*time.Second {
		t.Errorf("interrupt-to-exit took %v; the kernel check is not aborting promptly", d)
	}

	var ee *exec.ExitError
	if !errors.As(runErr, &ee) || ee.ExitCode() != 130 {
		t.Errorf("exit = %v, want status 130:\n%s", runErr, out.String())
	}
	if !strings.Contains(out.String(), "interrupted:") {
		t.Errorf("no partial-results summary:\n%s", out.String())
	}
	if !strings.Contains(out.String(), journalPath) {
		t.Errorf("summary does not name the resume journal:\n%s", out.String())
	}

	// The journal survived with the completed run only — it re-opens
	// cleanly (flock released, no torn tail) and resumes from it.
	j, loaded, err := exp.OpenJournal(journalPath)
	if err != nil {
		t.Fatalf("journal did not survive the interrupt: %v", err)
	}
	j.Close()
	if len(loaded) != 1 {
		t.Fatalf("journal holds %d entries, want exactly the 1 completed run:\n%s", len(loaded), out.String())
	}
}
