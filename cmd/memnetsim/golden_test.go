package main

import (
	"flag"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// update regenerates the golden files from the current binary:
//
//	go test ./cmd/memnetsim -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files from current output")

// wallRE and metricsOutRE scrub the only nondeterministic tokens in the
// output (wall-clock seconds, the caller's -metrics-out path) so goldens
// compare byte-for-byte.
var (
	wallRE       = regexp.MustCompile(`in \d+\.\d\ds wall`)
	metricsOutRE = regexp.MustCompile(`wrote metrics to .*`)
)

func scrubWall(b []byte) []byte {
	b = wallRE.ReplaceAll(b, []byte("in X.XXs wall"))
	return metricsOutRE.ReplaceAll(b, []byte("wrote metrics to METRICS_OUT"))
}

// checkGolden compares got against testdata/<name>.golden byte-for-byte
// (after scrubbing), rewriting the file under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	got = scrubWall(got)
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatalf("update %s: %v", path, err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s (run with -update to create): %v", path, err)
	}
	if string(got) != string(want) {
		t.Errorf("%s: output differs from golden (regenerate deliberately with -update)\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

// TestGoldenOutput locks the default text output of the CLI byte-for-byte.
// The goldens were captured before the metrics subsystem landed, so a pass
// here also proves the disabled-metrics path leaves output untouched.
func TestGoldenOutput(t *testing.T) {
	bin := buildCLI(t)
	cases := []struct {
		name string
		args []string
	}{
		{"run_default", []string{"-simtime", "60us", "-warmup", "20us"}},
		{"run_daisychain", []string{"-wl", "mixA", "-topo", "daisychain", "-mech", "VWL",
			"-policy", "unaware", "-simtime", "60us", "-warmup", "20us"}},
		{"batch", []string{"-config", "testdata/batch_config.json", "-jobs", "2"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := exec.Command(bin, tc.args...).CombinedOutput()
			if err != nil {
				t.Fatalf("%v: %v\n%s", tc.args, err, out)
			}
			checkGolden(t, tc.name, out)
		})
	}
}

// TestGoldenFaultMetricsRun locks the full fault-pipeline output byte
// for byte: a run with injected faults (burst corruption, a dropped
// wakeup, a vault stall, a link fail/repair), timeout-driven retries,
// the watchdog, and the metrics sampler armed must reproduce both the
// stdout report and the raw JSONL metrics export exactly. The goldens
// were captured before the timing-wheel event queue landed, so a pass
// proves the wheel preserved the (at, seq) event order end to end under
// the heaviest event mix the CLI can produce.
func TestGoldenFaultMetricsRun(t *testing.T) {
	bin := buildCLI(t)
	outPath := filepath.Join(t.TempDir(), "m.jsonl")
	out, err := exec.Command(bin,
		"-wl", "mixB", "-topo", "daisychain", "-size", "small",
		"-simtime", "220us", "-warmup", "20us",
		"-timeout", "2us", "-retries", "2", "-watchdog",
		"-faults", filepath.Join("testdata", "faults_metrics.json"),
		"-metrics", "-metrics-interval", "20us", "-metrics-out", outPath,
	).CombinedOutput()
	if err != nil {
		t.Fatalf("fault+metrics run: %v\n%s", err, out)
	}
	checkGolden(t, "fault_metrics_run", out)

	export, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatalf("read metrics export: %v", err)
	}
	checkGolden(t, "fault_metrics_export", export)
}

// TestMetricsFlagValidation: metrics flags must be rejected without
// -metrics or with a bad interval, each naming the offending flag, and a
// valid -metrics run must print the time-series figure.
func TestMetricsFlagValidation(t *testing.T) {
	bin := buildCLI(t)
	for name, args := range map[string][]string{
		"out without metrics":      {"-metrics-out", "x.jsonl"},
		"interval without metrics": {"-metrics-interval", "5us"},
		"unparseable interval":     {"-metrics", "-metrics-interval", "bogus"},
		"zero interval":            {"-metrics", "-metrics-interval", "0s"},
		"metrics with trace":       {"-metrics", "-trace"},
	} {
		out, err := exec.Command(bin, args...).CombinedOutput()
		if err == nil {
			t.Errorf("%s: accepted\n%s", name, out)
			continue
		}
		if !strings.Contains(string(out), "bad -") {
			t.Errorf("%s: error does not name the flag:\n%s", name, out)
		}
	}

	outPath := filepath.Join(t.TempDir(), "m.jsonl")
	out, err := exec.Command(bin, "-metrics", "-metrics-out", outPath,
		"-simtime", "30us", "-warmup", "10us").CombinedOutput()
	if err != nil {
		t.Fatalf("valid -metrics run failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "metrics: ") {
		t.Errorf("-metrics run printed no time-series figure:\n%s", out)
	}
	data, err := os.ReadFile(outPath)
	if err != nil || !strings.Contains(string(data), `"series":"frontend.completed"`) {
		t.Errorf("-metrics-out export missing or incomplete (err=%v):\n%s", err, data)
	}
}
