// Command memnetd is the simulation daemon: a long-lived HTTP service
// that accepts sweep submissions (the same JSON run lists `memnetsim
// -config` reads), executes them on a bounded worker pool with per-job
// budgets, streams progress and epoch metrics over SSE, and persists
// every result in a content-addressed store so duplicate submissions
// are cache hits.
//
// Quick start:
//
//	memnetd -addr :9732 -store /var/lib/memnetd &
//	curl -s localhost:9732/jobs -d '{"runs":[{"workload":"mixB","simtime":"400us","warmup":"100us"}]}'
//	curl -s localhost:9732/jobs/j1                # status
//	curl -N  localhost:9732/jobs/j1/stream        # SSE progress + metrics
//	curl -s  localhost:9732/jobs/j1/result        # final results
//
// SIGINT/SIGTERM drains gracefully: admission stops (/readyz goes 503),
// in-flight jobs get -drain-grace to finish, anything still running is
// then canceled (the kernel aborts within one check interval), the
// journal is flushed, and the process exits 0 on a clean drain. A
// second signal exits immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime/debug"
	"syscall"
	"time"

	"memnet/internal/exp"
	"memnet/internal/serve"
)

func main() {
	os.Exit(run())
}

func run() int {
	// Same rationale as memnetsim: cell construction churns tens of MB,
	// so a lazier GC trigger buys back collector cycles.
	debug.SetGCPercent(600)

	addr := flag.String("addr", ":9732", "listen address")
	storeDir := flag.String("store", "", "content-addressed result store directory (required)")
	journalPath := flag.String("journal", "", "append fresh results to this exp JSONL journal (flock-protected)")
	acceptPath := flag.String("accept-journal", "",
		"write-ahead accept journal path (default <store>/accept.wal; \"off\" disables crash recovery)")
	storeMaxBytes := flag.Int64("store-max-bytes", 0, "store size cap in bytes; LRU eviction above it (0 = unlimited)")
	storeMaxAge := flag.Duration("store-max-age", 0, "evict store entries not hit for this long (0 = keep forever)")
	authToken := flag.String("auth-token", "",
		"shared secret; when set, POST /jobs and DELETE /jobs/{id} require 'Authorization: Bearer <token>'")
	queueDepth := flag.Int("queue", serve.DefaultQueueDepth, "admission queue depth (full = 429 + Retry-After)")
	runners := flag.Int("runners", serve.DefaultRunners, "concurrent job executors")
	wallBudget := flag.Duration("wall-budget", 0, "per-job wall-clock budget (0 = unlimited)")
	eventBudget := flag.Uint64("event-budget", 0, "per-job simulated-event budget (0 = unlimited)")
	checkEvery := flag.Uint64("check-every", 0, "kernel cancellation-check stride in events (0 = default)")
	drainGrace := flag.Duration("drain-grace", 30*time.Second,
		"how long in-flight jobs may run after SIGTERM before they are canceled")
	verbose := flag.Bool("v", false, "log admissions and cell completions")
	flag.Parse()

	if *storeDir == "" {
		log.Print("memnetd: -store is required (results must survive the process)")
		return 2
	}
	if *queueDepth < 1 || *runners < 1 {
		log.Print("memnetd: -queue and -runners must be at least 1")
		return 2
	}
	if *storeMaxBytes < 0 || *storeMaxAge < 0 {
		log.Print("memnetd: -store-max-bytes and -store-max-age must not be negative")
		return 2
	}
	store, err := serve.NewStore(*storeDir)
	if err != nil {
		log.Printf("memnetd: %v", err)
		return 2
	}
	// Startup fsck: verify every entry (embedded key + payload checksum),
	// quarantine what fails, sweep temp files a crash mid-Put leaked.
	rep, err := store.Fsck()
	if err != nil {
		log.Printf("memnetd: store fsck: %v", err)
		return 2
	}
	log.Printf("memnetd: fsck: %d entries (%d bytes) ok, %d migrated, %d quarantined, %d stale temp file(s) removed",
		rep.Entries, rep.Bytes, rep.Migrated, rep.Quarantined, rep.TempsRemoved)
	if *storeMaxBytes > 0 || *storeMaxAge > 0 {
		evicted, err := store.GC(serve.GCConfig{MaxBytes: *storeMaxBytes, MaxAge: *storeMaxAge})
		if err != nil {
			log.Printf("memnetd: store gc: %v", err)
			return 2
		}
		if evicted > 0 {
			log.Printf("memnetd: gc: evicted %d entr(ies) at startup", evicted)
		}
	}
	var journal *exp.Journal
	if *journalPath != "" {
		j, loaded, err := exp.OpenJournal(*journalPath)
		if err != nil {
			log.Printf("memnetd: %v", err)
			return 2
		}
		journal = j
		defer journal.Close()
		if len(loaded) > 0 {
			log.Printf("memnetd: journal %s holds %d completed run(s)", *journalPath, len(loaded))
		}
	}
	var accepts *serve.AcceptLog
	var pending []serve.AcceptedJob
	if *acceptPath != "off" {
		path := *acceptPath
		if path == "" {
			path = filepath.Join(*storeDir, "accept.wal")
		}
		a, p, err := serve.OpenAcceptLog(path, nil)
		if err != nil {
			log.Printf("memnetd: %v", err)
			return 2
		}
		accepts, pending = a, p
		defer accepts.Close()
	}

	logf := func(string, ...any) {}
	if *verbose {
		logf = log.Printf
	}
	srv := serve.New(serve.Config{
		Store:         store,
		Journal:       journal,
		Accepts:       accepts,
		AuthToken:     *authToken,
		StoreMaxBytes: *storeMaxBytes,
		StoreMaxAge:   *storeMaxAge,
		QueueDepth:    *queueDepth,
		Runners:       *runners,
		WallBudget:    *wallBudget,
		EventBudget:   *eventBudget,
		CheckEvery:    *checkEvery,
		Logf:          logf,
	})
	// Replay accepted-but-unfinished jobs before taking traffic: stored
	// cells come back as cache hits, only lost compute re-runs.
	if n := srv.Recover(pending); n > 0 {
		log.Printf("memnetd: recovered %d job(s) from the accept journal", n)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Printf("memnetd: %v", err)
		return 2
	}
	hs := &http.Server{Handler: srv.Handler()}
	// The resolved address goes to stderr so scripts (and the smoke test)
	// can bind :0 and discover the port.
	log.Printf("memnetd: listening on http://%s (store %s, queue %d, runners %d)",
		ln.Addr(), *storeDir, *queueDepth, *runners)

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("memnetd: %v: draining (grace %s; signal again to exit now)", sig, *drainGrace)
	case err := <-serveErr:
		log.Printf("memnetd: serve: %v", err)
		return 1
	}

	// Second signal: abandon the drain.
	go func() {
		sig := <-sigCh
		log.Printf("memnetd: %v again: exiting immediately", sig)
		os.Exit(2)
	}()

	dctx, dcancel := context.WithTimeout(context.Background(), *drainGrace)
	defer dcancel()
	drainErr := srv.Drain(dctx)

	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	hs.Shutdown(sctx)

	st := srv.Stats()
	fmt.Fprintf(os.Stderr,
		"memnetd: drained: %d submitted, %d recovered, %d cells run, %d cache hits, %d rejected, %d canceled, "+
			"%d quarantined, %d evicted, %d store put errors\n",
		st.Submitted, st.Recovered, st.CellsRun, st.CacheHits, st.Rejected, st.Canceled,
		st.Quarantined, st.Evictions, st.StorePutErrors)
	if drainErr != nil && !errors.Is(drainErr, context.Canceled) {
		log.Printf("memnetd: drain deadline hit; in-flight jobs were canceled")
		return 1
	}
	return 0
}
