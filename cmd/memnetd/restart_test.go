package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"memnet/internal/serve"
)

// daemon is one life of a real memnetd process under test.
type daemon struct {
	cmd     *exec.Cmd
	base    string
	logMu   sync.Mutex
	log     bytes.Buffer // guarded by logMu: the scanner goroutine appends while the test reads
	logDone chan struct{}
}

func (d *daemon) logText() string {
	d.logMu.Lock()
	defer d.logMu.Unlock()
	return d.log.String()
}

func startDaemon(t *testing.T, bin string, args ...string) *daemon {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })

	d := &daemon{cmd: cmd, logDone: make(chan struct{})}
	addrCh := make(chan string, 1)
	go func() {
		defer close(d.logDone)
		sc := bufio.NewScanner(stderr)
		addrRe := regexp.MustCompile(`listening on (http://\S+)`)
		for sc.Scan() {
			line := sc.Text()
			d.logMu.Lock()
			d.log.WriteString(line + "\n")
			d.logMu.Unlock()
			if m := addrRe.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case d.base = <-addrCh:
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon never announced its address:\n%s", d.logText())
	}
	return d
}

func (d *daemon) submit(t *testing.T, body string) string {
	t.Helper()
	resp, err := http.Post(d.base+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: %s: %s", resp.Status, msg)
	}
	var sr struct {
		ID string `json:"id"`
	}
	json.NewDecoder(resp.Body).Decode(&sr)
	return sr.ID
}

func (d *daemon) waitDone(t *testing.T, id string, timeout time.Duration) (state string, cacheHits int) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(d.base + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			State     string `json:"state"`
			CacheHits int    `json:"cache_hits"`
		}
		json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		switch st.State {
		case "done", "failed", "canceled":
			return st.State, st.CacheHits
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck (%s):\n%s", id, st.State, d.logText())
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func (d *daemon) result(t *testing.T, id string) []json.RawMessage {
	t.Helper()
	resp, err := http.Get(d.base + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result %s: %s", id, resp.Status)
	}
	var out struct {
		Results []json.RawMessage `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Results
}

// TestDaemonRestartSmoke is the crash-recovery check behind the
// `make daemonrestartsmoke` CI step: a real memnetd is SIGKILLed with
// one job mid-kernel and one still queued, then restarted on the same
// store. The second life must replay both from the accept journal and
// run them to completion under their original IDs, serve the first
// life's stored result as a byte-identical cache hit (no duplicate
// simulation), and leave an accept journal that owes nothing.
func TestDaemonRestartSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon restart smoke skipped in -short mode")
	}
	bin := buildDaemon(t)
	dir := t.TempDir()
	storeDir := filepath.Join(dir, "store")
	args := []string{
		"-addr", "127.0.0.1:0",
		"-store", storeDir,
		"-runners", "1",
		"-queue", "4",
		"-drain-grace", "10s",
		"-v",
	}

	// Life 1: one quick job to completion, then a slow job that will be
	// mid-kernel at the kill with a third queued behind it.
	d1 := startDaemon(t, bin, args...)
	quickBody := `{"runs":[{"workload":"mixG","simtime":"50us","warmup":"5us"}]}`
	quickID := d1.submit(t, quickBody)
	if state, _ := d1.waitDone(t, quickID, 2*time.Minute); state != "done" {
		t.Fatalf("quick job ended %s:\n%s", state, d1.logText())
	}
	quickRes := d1.result(t, quickID)

	slowID := d1.submit(t, `{"runs":[{"workload":"mixG","simtime":"20ms","warmup":"5us","wakeup_ns":20}]}`)
	queuedID := d1.submit(t, `{"runs":[{"workload":"mixG","simtime":"10ms","warmup":"5us","wakeup_ns":30}]}`)
	time.Sleep(500 * time.Millisecond) // the slow job is now inside the kernel

	// SIGKILL: no drain, no cleanup, no flock release beyond the OS's.
	// The scanner must hit EOF before Wait — Wait closes the pipe and
	// would race it for the final lines.
	if err := d1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	<-d1.logDone
	d1.cmd.Wait()

	// Life 2: same store, same (default) accept journal.
	d2 := startDaemon(t, bin, args...)
	if !strings.Contains(d2.logText(), "recovered 2 job(s)") {
		t.Fatalf("second life did not recover the killed jobs:\n%s", d2.logText())
	}
	// Both interrupted jobs finish under their original IDs.
	for _, id := range []string{slowID, queuedID} {
		if state, _ := d2.waitDone(t, id, 5*time.Minute); state != "done" {
			t.Fatalf("recovered job %s ended %s:\n%s", id, state, d2.logText())
		}
	}
	// The first life's completed work is still served from the store,
	// byte-identical — the kill lost in-flight compute, not results.
	dupID := d2.submit(t, quickBody)
	if _, hits := d2.waitDone(t, dupID, 2*time.Minute); hits != 1 {
		t.Fatalf("stored result did not survive the kill (cache hits = %d):\n%s", hits, d2.logText())
	}
	dupRes := d2.result(t, dupID)
	if len(dupRes) != 1 || len(quickRes) != 1 || !bytes.Equal(dupRes[0], quickRes[0]) {
		t.Fatal("cached result across restart is not byte-identical")
	}
	// Fresh IDs continue past the recovered ones — no collision.
	if dupID == quickID || dupID == slowID || dupID == queuedID {
		t.Fatalf("fresh id %s collides with a first-life id", dupID)
	}

	// Clean shutdown of the second life, then audit its drained line:
	// exactly the two recovered cells simulated, the duplicate was a hit.
	if err := d2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// Scanner EOF doubles as process exit (the pipe's write end closes
	// with the process); Wait must come after so it cannot race the
	// scanner for the drained-stats tail.
	select {
	case <-d2.logDone:
	case <-time.After(30 * time.Second):
		t.Fatalf("second life did not exit after SIGTERM:\n%s", d2.logText())
	}
	d2.cmd.Wait()
	drained := regexp.MustCompile(`drained: .*`).FindString(d2.logText())
	if !strings.Contains(drained, "2 recovered") ||
		!strings.Contains(drained, "2 cells run") ||
		!strings.Contains(drained, "1 cache hits") {
		t.Fatalf("second life stats show duplicate simulation or lost recovery: %q", drained)
	}

	// The accept journal owes nothing: a third open finds zero pending.
	wal, pending, err := serve.OpenAcceptLog(filepath.Join(storeDir, "accept.wal"), nil)
	if err != nil {
		t.Fatal(err)
	}
	wal.Close()
	if len(pending) != 0 {
		t.Fatalf("accept journal still owes %d job(s): %+v", len(pending), pending)
	}
	t.Logf("restart smoke ok: %s", drained)
}
