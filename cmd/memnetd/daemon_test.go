package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"memnet/internal/exp"
)

func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "memnetd")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestDaemonSmoke is the real-process lifecycle check behind the
// `make daemonsmoke` CI step, mirroring the distributed smoke: start
// memnetd on an ephemeral port, submit a sweep, stream its events,
// verify the duplicate submission is a cache hit, then SIGTERM the
// daemon while a long job is in flight and assert it drains — exits
// cleanly, cancels the live job, and leaves a valid journal.
func TestDaemonSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon smoke skipped in -short mode")
	}
	bin := buildDaemon(t)
	dir := t.TempDir()
	journalPath := filepath.Join(dir, "journal.jsonl")

	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-store", filepath.Join(dir, "store"),
		"-journal", journalPath,
		"-runners", "1",
		"-queue", "4",
		"-drain-grace", "2s",
		"-v")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Scan stderr for the announced address, keeping a transcript.
	addrCh := make(chan string, 1)
	var daemonLog bytes.Buffer
	logDone := make(chan struct{})
	go func() {
		defer close(logDone)
		sc := bufio.NewScanner(stderr)
		addrRe := regexp.MustCompile(`listening on (http://\S+)`)
		for sc.Scan() {
			line := sc.Text()
			daemonLog.WriteString(line + "\n")
			if m := addrRe.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	var base string
	select {
	case base = <-addrCh:
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon never announced its address:\n%s", daemonLog.String())
	}

	submit := func(body string) string {
		t.Helper()
		resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			msg, _ := io.ReadAll(resp.Body)
			t.Fatalf("submit: %s: %s", resp.Status, msg)
		}
		var sr struct {
			ID string `json:"id"`
		}
		json.NewDecoder(resp.Body).Decode(&sr)
		return sr.ID
	}
	waitDone := func(id string, timeout time.Duration) string {
		t.Helper()
		deadline := time.Now().Add(timeout)
		for {
			resp, err := http.Get(base + "/jobs/" + id)
			if err != nil {
				t.Fatal(err)
			}
			var st struct {
				State     string `json:"state"`
				CacheHits int    `json:"cache_hits"`
			}
			json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			switch st.State {
			case "done", "failed", "canceled":
				return st.State
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck (%s)", id, st.State)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	// Health surface up and ready.
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz = %d", resp.StatusCode)
	}

	// Submit a metrics-armed sweep and stream it to completion.
	body := `{"runs":[{"workload":"mixG","simtime":"50us","warmup":"5us"}],"metrics_interval":"10us"}`
	id := submit(body)
	if state := waitDone(id, 2*time.Minute); state != "done" {
		t.Fatalf("first job %s ended %s:\n%s", id, state, daemonLog.String())
	}
	stream, err := http.Get(base + "/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	events, _ := io.ReadAll(stream.Body)
	stream.Body.Close()
	for _, want := range []string{"event: result", "event: metrics", "event: done"} {
		if !strings.Contains(string(events), want) {
			t.Errorf("stream replay missing %q", want)
		}
	}

	// Duplicate submission: served from the store without simulating.
	id2 := submit(body)
	if state := waitDone(id2, 30*time.Second); state != "done" {
		t.Fatalf("duplicate job ended %s", state)
	}
	resp, err = http.Get(base + "/jobs/" + id2)
	if err != nil {
		t.Fatal(err)
	}
	var st2 struct {
		CacheHits int `json:"cache_hits"`
	}
	json.NewDecoder(resp.Body).Decode(&st2)
	resp.Body.Close()
	if st2.CacheHits != 1 {
		t.Fatalf("duplicate was not a cache hit:\n%s", daemonLog.String())
	}

	// SIGTERM with a long job in flight: the daemon must drain — cancel
	// the job via the kernel check (well before the simulation could
	// finish) and exit within the grace window.
	longID := submit(`{"runs":[{"workload":"mixG","simtime":"1s","warmup":"5us"}]}`)
	time.Sleep(300 * time.Millisecond) // let it enter the kernel
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	start := time.Now()
	select {
	case err := <-waitErr:
		// Exit 1 (drain deadline canceled the long job) and exit 0 are
		// both clean drains; anything else is a crash.
		if err != nil {
			var ee *exec.ExitError
			if !errors.As(err, &ee) || ee.ExitCode() > 1 {
				t.Fatalf("daemon exited badly: %v\n%s", err, daemonLog.String())
			}
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not exit after SIGTERM (in-flight job %s wedged the drain):\n%s",
			longID, daemonLog.String())
	}
	if d := time.Since(start); d > 15*time.Second {
		t.Errorf("drain took %v; cancellation did not abort the kernel promptly", d)
	}
	<-logDone
	if !strings.Contains(daemonLog.String(), "draining") {
		t.Errorf("daemon log shows no drain:\n%s", daemonLog.String())
	}

	// Journal integrity: re-opens cleanly (flock released, no torn tail)
	// and holds the one fresh result; the canceled job contributed none.
	j, loaded, err := exp.OpenJournal(journalPath)
	if err != nil {
		t.Fatalf("journal did not survive the drain: %v", err)
	}
	j.Close()
	if len(loaded) != 1 {
		data, _ := os.ReadFile(journalPath)
		t.Fatalf("journal holds %d entries, want 1:\n%s", len(loaded), data)
	}
}
