// Command memnetviz runs one simulation and renders the network as an
// annotated tree — per-link bandwidth modes, utilization meters and
// off-time — plus a channel-utilization sparkline sampled per epoch. It is
// the quickest way to see *where* in the topology a policy is saving
// power.
//
//	memnetviz -wl sp.D -topo daisychain -size big -mech VWL+ROO -policy aware
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"memnet/internal/core"
	"memnet/internal/exp"
	"memnet/internal/link"
	"memnet/internal/network"
	"memnet/internal/sim"
	"memnet/internal/topology"
	"memnet/internal/viz"
	"memnet/internal/workload"
)

func main() {
	wlName := flag.String("wl", "sp.D", "workload profile")
	topoName := flag.String("topo", "daisychain", "topology")
	sizeName := flag.String("size", "big", "small or big")
	mechName := flag.String("mech", "VWL+ROO", "link power mechanism")
	policyName := flag.String("policy", "aware", "none | unaware | aware | static")
	alpha := flag.Float64("alpha", 0.05, "allowable slowdown factor")
	simtime := flag.String("simtime", "500us", "simulated time")
	flag.Parse()

	wl, err := workload.ByName(*wlName)
	if err != nil {
		log.Fatal(err)
	}
	kind, err := topology.ParseKind(*topoName)
	if err != nil {
		log.Fatal(err)
	}
	mech, err := exp.ParseMech(*mechName)
	if err != nil {
		log.Fatal(err)
	}
	policy, err := exp.ParsePolicy(*policyName)
	if err != nil {
		log.Fatal(err)
	}
	size, err := exp.ParseSize(*sizeName)
	if err != nil {
		log.Fatal(err)
	}
	dur, err := time.ParseDuration(*simtime)
	if err != nil {
		log.Fatal(err)
	}
	horizon := sim.Duration(dur.Nanoseconds()) * sim.Nanosecond

	kernel := sim.NewKernel()
	topo, err := topology.Build(kind, wl.Modules(size.ChunkGB()))
	if err != nil {
		log.Fatal(err)
	}
	cfg := network.DefaultConfig()
	cfg.Mechanism = mech.BW
	cfg.ROO = mech.ROO
	cfg.ChunkBytes = uint64(size.ChunkGB()) << 30
	net := network.New(kernel, topo, cfg)
	core.Attach(kernel, net, core.DefaultConfig(policy, *alpha))
	fe, err := workload.NewFrontEnd(kernel, net, wl, workload.DefaultFrontEndConfig(42))
	if err != nil {
		log.Fatal(err)
	}
	fe.Start()

	// Sample channel utilization per epoch for the sparkline.
	epoch := 100 * sim.Microsecond
	var chanSeries []float64
	prev := net.TakeSnapshot()
	for now := epoch; now <= horizon; now += epoch {
		kernel.Run(now)
		snap := net.TakeSnapshot()
		chanSeries = append(chanSeries, network.ChannelUtilization(prev, snap))
		prev = snap
	}
	final := net.TakeSnapshot()
	elapsed := final.At

	fmt.Printf("%s on %s %s, %s links, %s policy, alpha=%.1f%%, %s simulated\n\n",
		wl.Name, size, kind, mech, policy, 100**alpha, elapsed)

	linkDesc := func(l *link.Link) string {
		util := float64(l.BusyTime()) / float64(elapsed)
		mode := ""
		if mech.BW != link.MechNone {
			mode = fmt.Sprintf(" %2dL", link.Lanes(l.BWTarget()))
			if mech.BW == link.MechDVFS {
				mode = fmt.Sprintf(" %3.0f%%bw", 100*link.BWFactor(mech.BW, l.BWTarget()))
			}
		}
		off := ""
		if mech.ROO {
			off = fmt.Sprintf(" roo:%s", link.ROOThresholds[l.ROOMode()])
		}
		return fmt.Sprintf("%s %s %4.1f%%%s%s", l.Dir.String()[:3], viz.Bar(util, 10), 100*util, mode, off)
	}
	annotate := func(m int) string {
		mod := net.Modules[m]
		return fmt.Sprintf("↓%s  ↑%s", linkDesc(mod.UpReq), linkDesc(mod.UpResp))
	}
	fmt.Print(viz.RenderTree(topo, annotate))

	fmt.Printf("\nchannel utilization per epoch: %s\n", viz.Sparkline(chanSeries))
	p := network.IntervalPower(network.Snapshot{}, final)
	fmt.Printf("avg power: %.2f W total (%.2f W/HMC), idle I/O %.0f%%\n",
		p.Total(), p.Total()/float64(topo.N()), 100*p.IdleIO/p.Total())
}
